// Engine: calendar ordering, determinism, task lifecycle, and the
// conservative-PDES partition boundaries (merged-window mode).
#include <gtest/gtest.h>

#include <queue>
#include <utility>
#include <vector>

#include "sim/calendar.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace nwc::sim {
namespace {

Task<> delayer(Engine& e, Tick d, std::vector<Tick>* log) {
  co_await e.delay(d);
  log->push_back(e.now());
}

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_EQ(e.eventsProcessed(), 0u);
  EXPECT_EQ(e.pendingEvents(), 0u);
}

TEST(Engine, DelayAdvancesClock) {
  Engine e;
  std::vector<Tick> log;
  e.spawn(delayer(e, 100, &log));
  e.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 100u);
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<Tick> log;
  e.spawn(delayer(e, 300, &log));
  e.spawn(delayer(e, 100, &log));
  e.spawn(delayer(e, 200, &log));
  e.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 100u);
  EXPECT_EQ(log[1], 200u);
  EXPECT_EQ(log[2], 300u);
}

TEST(Engine, EqualTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  auto mk = [&](int id) -> Task<> {
    co_await e.delay(50);
    order.push_back(id);
  };
  for (int i = 0; i < 8; ++i) e.spawn(mk(i));
  e.run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ZeroDelayIsReadyImmediately) {
  Engine e;
  bool ran = false;
  auto t = [&]() -> Task<> {
    co_await e.delay(0);
    ran = true;
  };
  e.spawn(t());
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 0u);
}

TEST(Engine, WaitUntilPastTimeDoesNotSuspend) {
  Engine e;
  std::uint64_t events_before = 0;
  auto t = [&]() -> Task<> {
    co_await e.delay(100);
    events_before = e.eventsProcessed();
    co_await e.waitUntil(50);  // already past
    EXPECT_EQ(e.now(), 100u);
  };
  e.spawn(t());
  e.run();
  // The waitUntil(50) must not have produced an extra event.
  EXPECT_EQ(e.eventsProcessed(), events_before);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<Tick> log;
  e.spawn(delayer(e, 100, &log));
  e.spawn(delayer(e, 200, &log));
  e.runUntil(150);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(e.now(), 150u);
  e.run();
  EXPECT_EQ(log.size(), 2u);
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int count = 0;
  auto t = [&]() -> Task<> {
    for (;;) {
      co_await e.delay(10);
      if (++count == 5) e.stop();
    }
  };
  e.spawn(t());
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 50u);
}

TEST(Engine, TaskReturnsValue) {
  Engine e;
  auto child = [&]() -> Task<int> {
    co_await e.delay(5);
    co_return 42;
  };
  int got = 0;
  auto parent = [&]() -> Task<> { got = co_await child(); };
  e.spawn(parent());
  e.run();
  EXPECT_EQ(got, 42);
}

TEST(Engine, NestedTasksComposeTimes) {
  Engine e;
  auto leaf = [&]() -> Task<> { co_await e.delay(10); };
  auto mid = [&]() -> Task<> {
    co_await leaf();
    co_await leaf();
  };
  Tick end = 0;
  auto top = [&]() -> Task<> {
    co_await mid();
    end = e.now();
  };
  e.spawn(top());
  e.run();
  EXPECT_EQ(end, 20u);
}

TEST(Engine, ExceptionPropagatesToAwaiter) {
  Engine e;
  auto thrower = [&]() -> Task<> {
    co_await e.delay(1);
    throw std::runtime_error("boom");
  };
  bool caught = false;
  auto top = [&]() -> Task<> {
    try {
      co_await thrower();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  };
  e.spawn(top());
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, AllSpawnedDoneTracksCompletion) {
  Engine e;
  e.spawn(delayer(e, 10, new std::vector<Tick>()));  // deliberately leaked log
  EXPECT_FALSE(e.allSpawnedDone());
  e.run();
  EXPECT_TRUE(e.allSpawnedDone());
}

TEST(Engine, ManyTasksAreReaped) {
  Engine e;
  std::vector<Tick> log;
  for (int i = 0; i < 10000; ++i) e.spawn(delayer(e, static_cast<Tick>(i % 97), &log));
  e.run();
  EXPECT_EQ(log.size(), 10000u);
  EXPECT_TRUE(e.allSpawnedDone());
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::vector<Tick> log;
    for (int i = 0; i < 50; ++i) e.spawn(delayer(e, static_cast<Tick>((i * 37) % 101), &log));
    e.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- CalendarQueue -----------------------------------------------------

TEST(CalendarQueue, TortureMatchesReferenceHeap) {
  // Random push/pop interleaving against the std::priority_queue the
  // calendar replaced. Pushes never go below the tick being drained (the
  // engine clamps to now()), matching the queue's documented contract;
  // offset 0 pushes land on the draining tick, hitting the batch-append
  // path mid-drain.
  CalendarQueue q;
  using Ref = std::pair<Tick, std::uint64_t>;
  auto greater = [](const Ref& a, const Ref& b) { return a > b; };
  std::priority_queue<Ref, std::vector<Ref>, decltype(greater)> ref(greater);
  Rng rng(0xca1);
  std::uint64_t seq = 0;
  Tick cur = 0;
  for (int step = 0; step < 100000; ++step) {
    if (ref.empty() || rng.below(8) < 5) {
      const Tick t = cur + static_cast<Tick>(rng.below(16));
      q.push(t, seq, {});
      ref.push({t, seq});
      ++seq;
    } else {
      ASSERT_FALSE(q.empty());
      EXPECT_EQ(q.peek().t, ref.top().first);
      const CalEntry e = q.pop();
      ASSERT_EQ(e.t, ref.top().first);
      ASSERT_EQ(e.seq, ref.top().second);
      ref.pop();
      cur = e.t;
    }
    EXPECT_EQ(q.size(), ref.size());
  }
  while (!ref.empty()) {
    const CalEntry e = q.pop();
    ASSERT_EQ(e.t, ref.top().first);
    ASSERT_EQ(e.seq, ref.top().second);
    ref.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, SameTickAppendsWhileDraining) {
  // A batch can grow *while* it drains (Signal::notifyAll storms do this):
  // once tick 5 starts popping, new tick-5 pushes must append to the batch
  // and still pop before tick 6 — including after the batch momentarily
  // empties.
  CalendarQueue q;
  q.push(5, 0, {});
  q.push(6, 1, {});
  EXPECT_EQ(q.pop().seq, 0u);   // tick 5 is now draining (batch empty)
  q.push(5, 2, {});             // late same-tick arrival
  q.push(5, 3, {});
  EXPECT_EQ(q.pop().seq, 2u);
  q.push(5, 4, {});             // batch drained once already; still tick 5
  EXPECT_EQ(q.pop().seq, 3u);
  EXPECT_EQ(q.pop().seq, 4u);
  EXPECT_EQ(q.pop().seq, 1u);   // only now does tick 6 fire
  EXPECT_TRUE(q.empty());
}

// --- conservative PDES (merged windows) --------------------------------

// Suspends the coroutine and resumes it on partition `dst` at absolute
// time `t` — the only way model code crosses partitions.
struct HopAwaiter {
  Engine& e;
  int dst;
  Tick t;
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) const { e.scheduleOn(dst, t, h); }
  void await_resume() const {}
};

// Ping-pongs around `parts` partitions, hopping exactly `hop` ticks ahead
// each round, logging (time, round). With hop == lookahead every event
// lands exactly ON the next window's horizon — the boundary case: it must
// be excluded from the current window (horizon is exclusive) and fire
// first in the next one.
Task<> hopper(Engine& e, int parts, Tick hop, int rounds, std::vector<std::pair<Tick, int>>* log) {
  for (int r = 0; r < rounds; ++r) {
    co_await HopAwaiter{e, (r + 1) % parts, e.now() + hop};
    log->push_back({e.now(), r});
  }
}

TEST(Engine, ConfigurePartitionsRejectsUsedEngine) {
  Engine e;
  std::vector<Tick> log;
  e.spawn(delayer(e, 5, &log));
  EXPECT_THROW(e.configurePartitions(4, 10), std::logic_error);
}

TEST(Engine, PastScheduleClampsAndCounts) {
  Engine e;
  struct PastAwaiter {
    Engine& e;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      e.scheduleAt(e.now() - 10, h);  // silently clamped to now()
    }
    void await_resume() const {}
  };
  Tick fired = 0;
  auto t = [&]() -> Task<> {
    co_await e.delay(100);
    co_await PastAwaiter{e};
    fired = e.now();
  };
  e.spawn(t());
  e.run();
  EXPECT_EQ(fired, 100u);  // clamped, not time-travelled
  EXPECT_EQ(e.clampedSchedules(), 1u);
}

TEST(Engine, MergedEventExactlyAtHorizonMatchesSerial) {
  const Tick kLookahead = 10;
  auto run_once = [&](int partitions) {
    Engine e;
    if (partitions > 1) e.configurePartitions(partitions, kLookahead);
    std::vector<std::pair<Tick, int>> log;
    e.spawnOn(0, hopper(e, partitions > 1 ? partitions : 4, kLookahead, 40, &log));
    e.run();
    return std::make_pair(log, e.eventsProcessed());
  };
  const auto serial = run_once(1);
  const auto merged = run_once(4);
  EXPECT_EQ(serial.first, merged.first);
  EXPECT_EQ(serial.second, merged.second);
}

TEST(Engine, MergedCrossPartitionAtNowMatchesSerial) {
  // hop == 0: every cross-partition event lands at the *current* tick —
  // zero effective lookahead, the regime machine simulations live in.
  // Merged mode must deliver immediately and stay byte-identical, while
  // counting the would-be mailbox violations.
  auto run_once = [&](int partitions) {
    Engine e;
    if (partitions > 1) e.configurePartitions(partitions, 10);
    std::vector<std::pair<Tick, int>> log;
    auto driver = [&e, &log, partitions]() -> Task<> {
      for (int r = 0; r < 30; ++r) {
        // Advance time a little, then hop at now() exactly.
        co_await e.delay(static_cast<Tick>(r % 3));
        co_await HopAwaiter{e, (r + 1) % (partitions > 1 ? partitions : 4),
                            e.now()};
        log.push_back({e.now(), r});
      }
    };
    e.spawnOn(0, driver());
    e.run();
    return std::make_pair(log, e.pdesStats());
  };
  const auto serial = run_once(1);
  const auto merged = run_once(4);
  EXPECT_EQ(serial.first, merged.first);
  EXPECT_GT(merged.second.mailbox_posts, 0u);
  EXPECT_GT(merged.second.mailbox_below_horizon, 0u);
  EXPECT_EQ(merged.second.lookahead_violations, 0u);  // merged never violates
}

TEST(Engine, StopMidWindowHaltsMergedRun) {
  Engine e;
  e.configurePartitions(2, 100);  // wide window: both lanes share one
  int count = 0;
  auto ticker = [&]() -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await e.delay(10);
      if (++count == 5) e.stop();
    }
  };
  std::vector<Tick> other;
  e.spawnOn(0, ticker());
  e.spawnOn(1, delayer(e, 1000, &other));
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 50u);
  EXPECT_GT(e.pendingEvents(), 0u);  // the stopped run left events behind
  e.run();                           // and can resume cleanly
  EXPECT_EQ(other.size(), 1u);
}

TEST(Engine, EmptyPartitionsAreHarmless) {
  Engine e;
  e.configurePartitions(4, 10);
  std::vector<Tick> log;
  // Everything on partition 0; partitions 1-3 never see an event.
  for (int i = 0; i < 10; ++i) e.spawnOn(0, delayer(e, static_cast<Tick>(7 * i), &log));
  e.run();
  EXPECT_EQ(log.size(), 10u);
  const PdesStats s = e.pdesStats();
  EXPECT_EQ(s.partitions, 4u);
  ASSERT_EQ(s.partition_events.size(), 4u);
  EXPECT_GT(s.partition_events[0], 0u);
  EXPECT_EQ(s.partition_events[1] + s.partition_events[2] + s.partition_events[3], 0u);
  EXPECT_DOUBLE_EQ(s.imbalance(), 4.0);  // fully serialized on one LP
}

TEST(Engine, MergedRunUntilStopsAtBoundary) {
  Engine e;
  e.configurePartitions(2, 5);
  std::vector<Tick> log;
  e.spawnOn(0, delayer(e, 100, &log));
  e.spawnOn(1, delayer(e, 200, &log));
  e.runUntil(150);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(e.now(), 150u);
  e.run();
  EXPECT_EQ(log.size(), 2u);
}

}  // namespace
}  // namespace nwc::sim
