// Continuous telemetry: the periodic sampler, the online health detectors,
// and the determinism of the nwc-timeseries-v1 export under parallel runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "machine/config.hpp"
#include "obs/health.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/timeline.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace nwc {
namespace {

obs::HealthMonitor::Window window(sim::Tick t0, sim::Tick t1) {
  obs::HealthMonitor::Window w;
  w.t0 = t0;
  w.t1 = t1;
  return w;
}

TEST(HealthMonitor, TripsOnlyAfterConsecutiveHotWindows) {
  obs::HealthThresholds th;
  th.consecutive = 3;
  obs::HealthMonitor mon(th, obs::HealthContext{});

  // Two hot windows, a quiet one, then two more: never three in a row.
  for (int hot : {1, 1, 0, 1, 1}) {
    auto w = window(0, 1000);
    w.nacks = hot ? 100.0 : 0.0;
    mon.observe(w);
  }
  EXPECT_EQ(mon.totalTrips(), 0u);
  EXPECT_STREQ(mon.verdict(), "healthy");
  EXPECT_EQ(mon.state(obs::Detector::kNackStorm).windows, 4u);

  // The third consecutive hot window starts the episode — exactly once.
  for (int i = 0; i < 5; ++i) {
    auto w = window(i * 1000, (i + 1) * 1000);
    w.nacks = 100.0;
    mon.observe(w);
  }
  EXPECT_EQ(mon.state(obs::Detector::kNackStorm).trips, 1u);
  EXPECT_TRUE(mon.state(obs::Detector::kNackStorm).active);
  EXPECT_STREQ(mon.verdict(), "degraded");
  ASSERT_EQ(mon.events().size(), 1u);
  EXPECT_TRUE(mon.events()[0].onset);
  EXPECT_EQ(mon.events()[0].detector, obs::Detector::kNackStorm);
}

TEST(HealthMonitor, ClearsAfterConsecutiveQuietWindows) {
  obs::HealthThresholds th;
  th.consecutive = 2;
  obs::HealthMonitor mon(th, obs::HealthContext{});

  for (int hot : {1, 1, 0, 0}) {
    auto w = window(0, 1000);
    w.nacks = hot ? 100.0 : 0.0;
    mon.observe(w);
  }
  EXPECT_FALSE(mon.state(obs::Detector::kNackStorm).active);
  ASSERT_EQ(mon.events().size(), 2u);
  EXPECT_TRUE(mon.events()[0].onset);
  EXPECT_FALSE(mon.events()[1].onset);
  // A cleared episode still counts toward the verdict.
  EXPECT_STREQ(mon.verdict(), "degraded");
  EXPECT_EQ(mon.totalTrips(), 1u);
}

TEST(HealthMonitor, FreeFramesWorstTracksMinimum) {
  obs::HealthThresholds th;
  th.consecutive = 1;
  th.free_frames_frac = 0.5;
  obs::HealthContext ctx;
  ctx.reserve_frames = 100.0;  // hot when free <= 50
  obs::HealthMonitor mon(th, ctx);

  for (double free : {40.0, 10.0, 30.0, 80.0}) {
    auto w = window(0, 1000);
    w.free_frames = free;
    mon.observe(w);
  }
  const auto& s = mon.state(obs::Detector::kFreeFrames);
  EXPECT_EQ(s.trips, 1u);
  EXPECT_EQ(s.windows, 3u);    // 80 was quiet
  EXPECT_EQ(s.worst, 10.0);    // lower is worse for free frames
}

TEST(HealthMonitor, ContextZerosDisableDependentDetectors) {
  obs::HealthThresholds th;
  th.consecutive = 1;
  obs::HealthMonitor mon(th, obs::HealthContext{});  // all zeros

  auto w = window(0, 1000);
  w.free_frames = 0.0;     // would be starved if a reserve existed
  w.ring_staged = 1e9;     // would peg any ring
  w.retunes = 1e9;
  mon.observe(w);
  EXPECT_EQ(mon.state(obs::Detector::kFreeFrames).trips, 0u);
  EXPECT_EQ(mon.state(obs::Detector::kRingPegged).trips, 0u);
  EXPECT_EQ(mon.state(obs::Detector::kRetuneLivelock).trips, 0u);
  EXPECT_STREQ(mon.verdict(), "healthy");
}

TEST(HealthMonitor, EventLogIsBounded) {
  obs::HealthThresholds th;
  th.consecutive = 1;
  th.max_events = 3;
  obs::HealthMonitor mon(th, obs::HealthContext{});

  // Alternate hot/quiet: every window is a transition.
  for (int i = 0; i < 10; ++i) {
    auto w = window(i * 1000, (i + 1) * 1000);
    w.nacks = (i % 2 == 0) ? 100.0 : 0.0;
    mon.observe(w);
  }
  EXPECT_EQ(mon.events().size(), 3u);
  EXPECT_EQ(mon.eventsDropped(), 7u);
}

TEST(HealthMonitor, PublishesMetricsCatalog) {
  obs::HealthThresholds th;
  th.consecutive = 1;
  obs::HealthMonitor mon(th, obs::HealthContext{});
  auto w = window(0, 1000);
  w.nacks = 100.0;
  mon.observe(w);

  obs::MetricsRegistry reg;
  mon.publishMetrics(reg);
  EXPECT_EQ(reg.counterValue("health.trips"), 1u);
  EXPECT_EQ(reg.counterValue("health.nack_storm.trips"), 1u);
  EXPECT_EQ(reg.counterValue("health.free_frames.trips"), 0u);
  EXPECT_EQ(reg.gaugeValue("health.nack_storm.worst"), 100.0);
  EXPECT_EQ(reg.counterValue("health.events"), 1u);
  EXPECT_EQ(reg.counterValue("health.events_dropped"), 0u);
}

TEST(Sampler, RejectsNonPositiveInterval) {
  obs::SamplerConfig cfg;
  cfg.interval = 0;
  EXPECT_THROW(obs::Sampler(cfg, obs::HealthContext{}), std::invalid_argument);
}

TEST(Sampler, ExportRoundTripsAndMirrorsHealthOntoTimeline) {
  obs::SamplerConfig cfg;
  cfg.interval = 1000;
  cfg.thresholds.consecutive = 1;
  cfg.thresholds.nack_storm_min = 10;
  obs::Sampler sampler(cfg, obs::HealthContext{});
  obs::EventTimeline tl;
  sampler.attachTimeline(&tl);

  obs::SampleFrame f;
  sampler.record(0, f);  // baseline
  f[obs::Track::kNacks] = 50.0;  // delta 50 >= 10: hot window
  f[obs::Track::kFreeFrames] = 7.0;
  sampler.record(1000, f);
  EXPECT_EQ(sampler.samples(), 2u);

  // The onset landed on the timeline as a health-layer instant.
  ASSERT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.events()[0].layer, obs::Layer::kHealth);
  EXPECT_STREQ(tl.events()[0].name, "health.nack_storm");

  const auto doc = util::parseJson(sampler.toJson());
  EXPECT_EQ(doc.at("schema").string, "nwc-timeseries-v1");
  EXPECT_EQ(doc.at("interval_pcycles").number, 1000.0);
  EXPECT_EQ(doc.at("samples").number, 2.0);
  EXPECT_EQ(doc.at("tracks").object.size(), obs::kNumTracks);
  const auto& nacks = doc.at("tracks").at("swap.nacks");
  EXPECT_EQ(nacks.at("kind").string, "cumulative");
  EXPECT_EQ(nacks.at("max").number, 50.0);
  const auto& health = doc.at("health");
  EXPECT_EQ(health.at("verdict").string, "degraded");
  ASSERT_EQ(health.at("events").array.size(), 1u);
  EXPECT_EQ(health.at("events").array[0].at("detector").string, "nack_storm");
  EXPECT_EQ(health.at("events").array[0].at("kind").string, "onset");

  // CSV: header + one row per sample, tracks in catalog order.
  const std::string csv = sampler.toCsv();
  EXPECT_NE(csv.find("tick,vm.free_frames,"), std::string::npos);
  EXPECT_NE(csv.find("\n0,"), std::string::npos);
  EXPECT_NE(csv.find("\n1000,7,"), std::string::npos);
}

TEST(EventTimeline, DropsAreCountedPerLayer) {
  obs::EventTimeline tl(obs::kAllLayers, 2);
  tl.instant(obs::Layer::kMesh, "m", 0, 0, sim::kNoPage);
  tl.instant(obs::Layer::kMesh, "m", 1, 0, sim::kNoPage);
  tl.instant(obs::Layer::kRing, "r", 2, 0, sim::kNoPage);
  tl.instant(obs::Layer::kRing, "r", 3, 0, sim::kNoPage);
  EXPECT_EQ(tl.dropped(), 2u);
  EXPECT_EQ(tl.droppedByLayer(obs::Layer::kMesh), 2u);
  EXPECT_EQ(tl.droppedByLayer(obs::Layer::kRing), 0u);
  tl.clear();
  EXPECT_EQ(tl.droppedByLayer(obs::Layer::kMesh), 0u);
}

// The provoked scenario: a memory-starved standard machine runs its free
// list against the floor, so the free-frames detector must fire; the pinned
// comfortable configuration must stay quiet. Asserting both directions keeps
// the detectors calibrated — neither dead nor crying wolf.
TEST(SamplerEndToEnd, DetectsStarvationAndStaysQuietWhenHealthy) {
  const double scale = 0.02;

  auto runSampled = [&](machine::MachineConfig cfg) {
    obs::SamplerConfig scfg;
    scfg.interval = 50'000;
    obs::Sampler sampler(scfg, apps::healthContextFor(cfg));
    apps::ObsSinks sinks;
    sinks.sampler = &sampler;
    const apps::RunSummary s = apps::runApp(cfg, "radix", scale, sinks);
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.health_verdict, sampler.health().verdict());
    EXPECT_GT(sampler.samples(), 0u);
    return std::string(sampler.health().verdict());
  };

  machine::MachineConfig starved;
  starved.withSystem(machine::SystemKind::kStandard, machine::Prefetch::kOptimal);
  starved.memory_per_node = 16 * 1024;
  EXPECT_EQ(runSampled(starved), "degraded");

  machine::MachineConfig healthy;
  healthy.withSystem(machine::SystemKind::kNWCache, machine::Prefetch::kOptimal);
  healthy.memory_per_node = 32 * 1024;
  EXPECT_EQ(runSampled(healthy), "healthy");
}

// The tentpole's acceptance bar: the sampled export is a pure function of
// the machine configuration — byte-identical whether the run executed alone
// or beside three concurrent ones.
TEST(SamplerDeterminism, ParallelRunsMatchSerial) {
  machine::MachineConfig cfg;
  cfg.withSystem(machine::SystemKind::kNWCache, machine::Prefetch::kOptimal);
  cfg.memory_per_node = 32 * 1024;
  const double scale = 0.02;

  auto exportJson = [&]() {
    obs::SamplerConfig scfg;
    scfg.interval = 50'000;
    obs::Sampler sampler(scfg, apps::healthContextFor(cfg));
    apps::ObsSinks sinks;
    sinks.sampler = &sampler;
    apps::runApp(cfg, "radix", scale, sinks);
    return sampler.toJson() + "\n---\n" + sampler.toCsv();
  };

  const std::string serial = exportJson();
  std::vector<std::string> parallel(4);
  util::ParallelExecutor exec(4);
  exec.forEachIndex(parallel.size(),
                    [&](std::size_t i) { parallel[i] = exportJson(); });
  for (const std::string& p : parallel) EXPECT_EQ(p, serial);
}

}  // namespace
}  // namespace nwc
