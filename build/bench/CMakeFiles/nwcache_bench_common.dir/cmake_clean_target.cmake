file(REMOVE_RECURSE
  "libnwcache_bench_common.a"
)
