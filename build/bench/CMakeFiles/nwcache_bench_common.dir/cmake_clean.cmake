file(REMOVE_RECURSE
  "CMakeFiles/nwcache_bench_common.dir/common.cpp.o"
  "CMakeFiles/nwcache_bench_common.dir/common.cpp.o.d"
  "libnwcache_bench_common.a"
  "libnwcache_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
