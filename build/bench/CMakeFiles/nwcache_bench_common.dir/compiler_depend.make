# Empty compiler generated dependencies file for nwcache_bench_common.
# This may be replaced when dependencies are built.
