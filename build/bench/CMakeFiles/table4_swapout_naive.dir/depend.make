# Empty dependencies file for table4_swapout_naive.
# This may be replaced when dependencies are built.
