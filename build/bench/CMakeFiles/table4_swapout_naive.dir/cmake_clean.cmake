file(REMOVE_RECURSE
  "CMakeFiles/table4_swapout_naive.dir/table4_swapout_naive.cpp.o"
  "CMakeFiles/table4_swapout_naive.dir/table4_swapout_naive.cpp.o.d"
  "table4_swapout_naive"
  "table4_swapout_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_swapout_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
