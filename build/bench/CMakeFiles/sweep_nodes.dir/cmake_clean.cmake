file(REMOVE_RECURSE
  "CMakeFiles/sweep_nodes.dir/sweep_nodes.cpp.o"
  "CMakeFiles/sweep_nodes.dir/sweep_nodes.cpp.o.d"
  "sweep_nodes"
  "sweep_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
