# Empty dependencies file for sweep_nodes.
# This may be replaced when dependencies are built.
