file(REMOVE_RECURSE
  "CMakeFiles/fig4_breakdown_naive.dir/fig4_breakdown_naive.cpp.o"
  "CMakeFiles/fig4_breakdown_naive.dir/fig4_breakdown_naive.cpp.o.d"
  "fig4_breakdown_naive"
  "fig4_breakdown_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_breakdown_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
