# Empty dependencies file for fig4_breakdown_naive.
# This may be replaced when dependencies are built.
