file(REMOVE_RECURSE
  "CMakeFiles/table5_combining_optimal.dir/table5_combining_optimal.cpp.o"
  "CMakeFiles/table5_combining_optimal.dir/table5_combining_optimal.cpp.o.d"
  "table5_combining_optimal"
  "table5_combining_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_combining_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
