# Empty compiler generated dependencies file for table5_combining_optimal.
# This may be replaced when dependencies are built.
