file(REMOVE_RECURSE
  "CMakeFiles/paper_comparison.dir/paper_comparison.cpp.o"
  "CMakeFiles/paper_comparison.dir/paper_comparison.cpp.o.d"
  "paper_comparison"
  "paper_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
