# Empty dependencies file for paper_comparison.
# This may be replaced when dependencies are built.
