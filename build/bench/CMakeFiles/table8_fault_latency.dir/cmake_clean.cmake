file(REMOVE_RECURSE
  "CMakeFiles/table8_fault_latency.dir/table8_fault_latency.cpp.o"
  "CMakeFiles/table8_fault_latency.dir/table8_fault_latency.cpp.o.d"
  "table8_fault_latency"
  "table8_fault_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_fault_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
