# Empty dependencies file for table8_fault_latency.
# This may be replaced when dependencies are built.
