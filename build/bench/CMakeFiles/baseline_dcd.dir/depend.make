# Empty dependencies file for baseline_dcd.
# This may be replaced when dependencies are built.
