file(REMOVE_RECURSE
  "CMakeFiles/baseline_dcd.dir/baseline_dcd.cpp.o"
  "CMakeFiles/baseline_dcd.dir/baseline_dcd.cpp.o.d"
  "baseline_dcd"
  "baseline_dcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_dcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
