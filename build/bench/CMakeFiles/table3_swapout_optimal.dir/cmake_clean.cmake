file(REMOVE_RECURSE
  "CMakeFiles/table3_swapout_optimal.dir/table3_swapout_optimal.cpp.o"
  "CMakeFiles/table3_swapout_optimal.dir/table3_swapout_optimal.cpp.o.d"
  "table3_swapout_optimal"
  "table3_swapout_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_swapout_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
