# Empty dependencies file for table3_swapout_optimal.
# This may be replaced when dependencies are built.
