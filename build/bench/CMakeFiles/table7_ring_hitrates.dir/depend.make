# Empty dependencies file for table7_ring_hitrates.
# This may be replaced when dependencies are built.
