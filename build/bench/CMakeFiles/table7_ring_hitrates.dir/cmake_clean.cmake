file(REMOVE_RECURSE
  "CMakeFiles/table7_ring_hitrates.dir/table7_ring_hitrates.cpp.o"
  "CMakeFiles/table7_ring_hitrates.dir/table7_ring_hitrates.cpp.o.d"
  "table7_ring_hitrates"
  "table7_ring_hitrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ring_hitrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
