# Empty dependencies file for table6_combining_naive.
# This may be replaced when dependencies are built.
