file(REMOVE_RECURSE
  "CMakeFiles/table6_combining_naive.dir/table6_combining_naive.cpp.o"
  "CMakeFiles/table6_combining_naive.dir/table6_combining_naive.cpp.o.d"
  "table6_combining_naive"
  "table6_combining_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_combining_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
