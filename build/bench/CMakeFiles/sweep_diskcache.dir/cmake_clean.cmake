file(REMOVE_RECURSE
  "CMakeFiles/sweep_diskcache.dir/sweep_diskcache.cpp.o"
  "CMakeFiles/sweep_diskcache.dir/sweep_diskcache.cpp.o.d"
  "sweep_diskcache"
  "sweep_diskcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_diskcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
