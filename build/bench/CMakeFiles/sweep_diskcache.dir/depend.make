# Empty dependencies file for sweep_diskcache.
# This may be replaced when dependencies are built.
