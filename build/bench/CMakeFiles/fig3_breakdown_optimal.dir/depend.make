# Empty dependencies file for fig3_breakdown_optimal.
# This may be replaced when dependencies are built.
