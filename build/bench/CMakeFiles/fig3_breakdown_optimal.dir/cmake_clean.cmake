file(REMOVE_RECURSE
  "CMakeFiles/fig3_breakdown_optimal.dir/fig3_breakdown_optimal.cpp.o"
  "CMakeFiles/fig3_breakdown_optimal.dir/fig3_breakdown_optimal.cpp.o.d"
  "fig3_breakdown_optimal"
  "fig3_breakdown_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_breakdown_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
