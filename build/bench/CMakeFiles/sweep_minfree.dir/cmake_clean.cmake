file(REMOVE_RECURSE
  "CMakeFiles/sweep_minfree.dir/sweep_minfree.cpp.o"
  "CMakeFiles/sweep_minfree.dir/sweep_minfree.cpp.o.d"
  "sweep_minfree"
  "sweep_minfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_minfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
