# Empty compiler generated dependencies file for sweep_minfree.
# This may be replaced when dependencies are built.
