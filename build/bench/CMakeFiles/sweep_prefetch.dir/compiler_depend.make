# Empty compiler generated dependencies file for sweep_prefetch.
# This may be replaced when dependencies are built.
