file(REMOVE_RECURSE
  "CMakeFiles/sweep_prefetch.dir/sweep_prefetch.cpp.o"
  "CMakeFiles/sweep_prefetch.dir/sweep_prefetch.cpp.o.d"
  "sweep_prefetch"
  "sweep_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
