# Empty dependencies file for nwcsim.
# This may be replaced when dependencies are built.
