file(REMOVE_RECURSE
  "CMakeFiles/nwcsim.dir/nwcsim.cpp.o"
  "CMakeFiles/nwcsim.dir/nwcsim.cpp.o.d"
  "nwcsim"
  "nwcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
