# Empty dependencies file for nwcbatch.
# This may be replaced when dependencies are built.
