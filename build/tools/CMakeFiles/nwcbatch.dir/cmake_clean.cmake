file(REMOVE_RECURSE
  "CMakeFiles/nwcbatch.dir/nwcbatch.cpp.o"
  "CMakeFiles/nwcbatch.dir/nwcbatch.cpp.o.d"
  "nwcbatch"
  "nwcbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
