# Empty compiler generated dependencies file for burstiness_timeline.
# This may be replaced when dependencies are built.
