file(REMOVE_RECURSE
  "CMakeFiles/burstiness_timeline.dir/burstiness_timeline.cpp.o"
  "CMakeFiles/burstiness_timeline.dir/burstiness_timeline.cpp.o.d"
  "burstiness_timeline"
  "burstiness_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstiness_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
