file(REMOVE_RECURSE
  "CMakeFiles/ring_sizing_study.dir/ring_sizing_study.cpp.o"
  "CMakeFiles/ring_sizing_study.dir/ring_sizing_study.cpp.o.d"
  "ring_sizing_study"
  "ring_sizing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_sizing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
