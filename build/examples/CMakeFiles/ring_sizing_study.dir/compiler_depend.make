# Empty compiler generated dependencies file for ring_sizing_study.
# This may be replaced when dependencies are built.
