file(REMOVE_RECURSE
  "CMakeFiles/nwcache_net.dir/net/mesh.cpp.o"
  "CMakeFiles/nwcache_net.dir/net/mesh.cpp.o.d"
  "libnwcache_net.a"
  "libnwcache_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
