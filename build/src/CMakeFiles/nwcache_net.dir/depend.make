# Empty dependencies file for nwcache_net.
# This may be replaced when dependencies are built.
