file(REMOVE_RECURSE
  "libnwcache_net.a"
)
