# Empty dependencies file for nwcache_util.
# This may be replaced when dependencies are built.
