file(REMOVE_RECURSE
  "libnwcache_util.a"
)
