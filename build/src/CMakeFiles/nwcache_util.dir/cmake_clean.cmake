file(REMOVE_RECURSE
  "CMakeFiles/nwcache_util.dir/util/csv.cpp.o"
  "CMakeFiles/nwcache_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/nwcache_util.dir/util/ini.cpp.o"
  "CMakeFiles/nwcache_util.dir/util/ini.cpp.o.d"
  "CMakeFiles/nwcache_util.dir/util/json.cpp.o"
  "CMakeFiles/nwcache_util.dir/util/json.cpp.o.d"
  "CMakeFiles/nwcache_util.dir/util/table.cpp.o"
  "CMakeFiles/nwcache_util.dir/util/table.cpp.o.d"
  "CMakeFiles/nwcache_util.dir/util/units.cpp.o"
  "CMakeFiles/nwcache_util.dir/util/units.cpp.o.d"
  "libnwcache_util.a"
  "libnwcache_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
