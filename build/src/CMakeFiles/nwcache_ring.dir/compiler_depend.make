# Empty compiler generated dependencies file for nwcache_ring.
# This may be replaced when dependencies are built.
