file(REMOVE_RECURSE
  "CMakeFiles/nwcache_ring.dir/nwcache/interface.cpp.o"
  "CMakeFiles/nwcache_ring.dir/nwcache/interface.cpp.o.d"
  "CMakeFiles/nwcache_ring.dir/nwcache/optical_ring.cpp.o"
  "CMakeFiles/nwcache_ring.dir/nwcache/optical_ring.cpp.o.d"
  "libnwcache_ring.a"
  "libnwcache_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
