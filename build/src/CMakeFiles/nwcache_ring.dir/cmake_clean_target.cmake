file(REMOVE_RECURSE
  "libnwcache_ring.a"
)
