file(REMOVE_RECURSE
  "CMakeFiles/nwcache_apps.dir/apps/batch.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/batch.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/em3d.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/em3d.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/fft.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/fft.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/gauss.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/gauss.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/lu.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/lu.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/mg.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/mg.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/radix.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/radix.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/registry.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/registry.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/runner.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/runner.cpp.o.d"
  "CMakeFiles/nwcache_apps.dir/apps/sor.cpp.o"
  "CMakeFiles/nwcache_apps.dir/apps/sor.cpp.o.d"
  "libnwcache_apps.a"
  "libnwcache_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
