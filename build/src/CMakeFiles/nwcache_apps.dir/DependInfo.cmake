
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/batch.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/batch.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/batch.cpp.o.d"
  "/root/repo/src/apps/em3d.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/em3d.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/em3d.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/fft.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/fft.cpp.o.d"
  "/root/repo/src/apps/gauss.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/gauss.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/gauss.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/lu.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/lu.cpp.o.d"
  "/root/repo/src/apps/mg.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/mg.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/mg.cpp.o.d"
  "/root/repo/src/apps/radix.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/radix.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/radix.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/registry.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/registry.cpp.o.d"
  "/root/repo/src/apps/runner.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/runner.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/runner.cpp.o.d"
  "/root/repo/src/apps/sor.cpp" "src/CMakeFiles/nwcache_apps.dir/apps/sor.cpp.o" "gcc" "src/CMakeFiles/nwcache_apps.dir/apps/sor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nwcache_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
