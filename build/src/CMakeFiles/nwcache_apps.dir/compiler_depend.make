# Empty compiler generated dependencies file for nwcache_apps.
# This may be replaced when dependencies are built.
