file(REMOVE_RECURSE
  "libnwcache_apps.a"
)
