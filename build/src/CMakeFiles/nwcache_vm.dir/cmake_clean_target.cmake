file(REMOVE_RECURSE
  "libnwcache_vm.a"
)
