file(REMOVE_RECURSE
  "CMakeFiles/nwcache_vm.dir/vm/frame_pool.cpp.o"
  "CMakeFiles/nwcache_vm.dir/vm/frame_pool.cpp.o.d"
  "CMakeFiles/nwcache_vm.dir/vm/page_table.cpp.o"
  "CMakeFiles/nwcache_vm.dir/vm/page_table.cpp.o.d"
  "libnwcache_vm.a"
  "libnwcache_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
