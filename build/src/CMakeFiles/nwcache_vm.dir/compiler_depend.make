# Empty compiler generated dependencies file for nwcache_vm.
# This may be replaced when dependencies are built.
