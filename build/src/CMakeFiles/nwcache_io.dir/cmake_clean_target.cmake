file(REMOVE_RECURSE
  "libnwcache_io.a"
)
