file(REMOVE_RECURSE
  "CMakeFiles/nwcache_io.dir/io/disk.cpp.o"
  "CMakeFiles/nwcache_io.dir/io/disk.cpp.o.d"
  "CMakeFiles/nwcache_io.dir/io/disk_cache.cpp.o"
  "CMakeFiles/nwcache_io.dir/io/disk_cache.cpp.o.d"
  "CMakeFiles/nwcache_io.dir/io/log_disk.cpp.o"
  "CMakeFiles/nwcache_io.dir/io/log_disk.cpp.o.d"
  "CMakeFiles/nwcache_io.dir/io/pfs.cpp.o"
  "CMakeFiles/nwcache_io.dir/io/pfs.cpp.o.d"
  "libnwcache_io.a"
  "libnwcache_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
