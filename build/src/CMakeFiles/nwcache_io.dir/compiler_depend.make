# Empty compiler generated dependencies file for nwcache_io.
# This may be replaced when dependencies are built.
