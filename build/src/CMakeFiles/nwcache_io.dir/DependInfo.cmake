
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/disk.cpp" "src/CMakeFiles/nwcache_io.dir/io/disk.cpp.o" "gcc" "src/CMakeFiles/nwcache_io.dir/io/disk.cpp.o.d"
  "/root/repo/src/io/disk_cache.cpp" "src/CMakeFiles/nwcache_io.dir/io/disk_cache.cpp.o" "gcc" "src/CMakeFiles/nwcache_io.dir/io/disk_cache.cpp.o.d"
  "/root/repo/src/io/log_disk.cpp" "src/CMakeFiles/nwcache_io.dir/io/log_disk.cpp.o" "gcc" "src/CMakeFiles/nwcache_io.dir/io/log_disk.cpp.o.d"
  "/root/repo/src/io/pfs.cpp" "src/CMakeFiles/nwcache_io.dir/io/pfs.cpp.o" "gcc" "src/CMakeFiles/nwcache_io.dir/io/pfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nwcache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
