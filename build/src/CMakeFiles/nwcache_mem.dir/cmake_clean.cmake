file(REMOVE_RECURSE
  "CMakeFiles/nwcache_mem.dir/mem/cache.cpp.o"
  "CMakeFiles/nwcache_mem.dir/mem/cache.cpp.o.d"
  "CMakeFiles/nwcache_mem.dir/mem/directory.cpp.o"
  "CMakeFiles/nwcache_mem.dir/mem/directory.cpp.o.d"
  "CMakeFiles/nwcache_mem.dir/mem/tlb.cpp.o"
  "CMakeFiles/nwcache_mem.dir/mem/tlb.cpp.o.d"
  "CMakeFiles/nwcache_mem.dir/mem/write_buffer.cpp.o"
  "CMakeFiles/nwcache_mem.dir/mem/write_buffer.cpp.o.d"
  "libnwcache_mem.a"
  "libnwcache_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
