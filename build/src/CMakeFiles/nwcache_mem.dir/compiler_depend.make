# Empty compiler generated dependencies file for nwcache_mem.
# This may be replaced when dependencies are built.
