
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/nwcache_mem.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/nwcache_mem.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/directory.cpp" "src/CMakeFiles/nwcache_mem.dir/mem/directory.cpp.o" "gcc" "src/CMakeFiles/nwcache_mem.dir/mem/directory.cpp.o.d"
  "/root/repo/src/mem/tlb.cpp" "src/CMakeFiles/nwcache_mem.dir/mem/tlb.cpp.o" "gcc" "src/CMakeFiles/nwcache_mem.dir/mem/tlb.cpp.o.d"
  "/root/repo/src/mem/write_buffer.cpp" "src/CMakeFiles/nwcache_mem.dir/mem/write_buffer.cpp.o" "gcc" "src/CMakeFiles/nwcache_mem.dir/mem/write_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nwcache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
