file(REMOVE_RECURSE
  "libnwcache_mem.a"
)
