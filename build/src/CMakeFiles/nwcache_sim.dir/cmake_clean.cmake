file(REMOVE_RECURSE
  "CMakeFiles/nwcache_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/nwcache_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/nwcache_sim.dir/sim/fifo_server.cpp.o"
  "CMakeFiles/nwcache_sim.dir/sim/fifo_server.cpp.o.d"
  "CMakeFiles/nwcache_sim.dir/sim/random.cpp.o"
  "CMakeFiles/nwcache_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/nwcache_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/nwcache_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/nwcache_sim.dir/sim/sync.cpp.o"
  "CMakeFiles/nwcache_sim.dir/sim/sync.cpp.o.d"
  "CMakeFiles/nwcache_sim.dir/sim/timeseries.cpp.o"
  "CMakeFiles/nwcache_sim.dir/sim/timeseries.cpp.o.d"
  "CMakeFiles/nwcache_sim.dir/sim/trigger.cpp.o"
  "CMakeFiles/nwcache_sim.dir/sim/trigger.cpp.o.d"
  "libnwcache_sim.a"
  "libnwcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
