# Empty compiler generated dependencies file for nwcache_sim.
# This may be replaced when dependencies are built.
