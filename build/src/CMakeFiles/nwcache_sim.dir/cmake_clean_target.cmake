file(REMOVE_RECURSE
  "libnwcache_sim.a"
)
