
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/access.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/access.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/access.cpp.o.d"
  "/root/repo/src/machine/config.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/config.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/config.cpp.o.d"
  "/root/repo/src/machine/config_io.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/config_io.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/config_io.cpp.o.d"
  "/root/repo/src/machine/fault.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/fault.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/fault.cpp.o.d"
  "/root/repo/src/machine/io_drive.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/io_drive.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/io_drive.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/machine.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/machine.cpp.o.d"
  "/root/repo/src/machine/metrics.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/metrics.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/metrics.cpp.o.d"
  "/root/repo/src/machine/swap.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/swap.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/swap.cpp.o.d"
  "/root/repo/src/machine/trace.cpp" "src/CMakeFiles/nwcache_machine.dir/machine/trace.cpp.o" "gcc" "src/CMakeFiles/nwcache_machine.dir/machine/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nwcache_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
