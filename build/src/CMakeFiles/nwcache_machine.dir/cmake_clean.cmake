file(REMOVE_RECURSE
  "CMakeFiles/nwcache_machine.dir/machine/access.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/access.cpp.o.d"
  "CMakeFiles/nwcache_machine.dir/machine/config.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/config.cpp.o.d"
  "CMakeFiles/nwcache_machine.dir/machine/config_io.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/config_io.cpp.o.d"
  "CMakeFiles/nwcache_machine.dir/machine/fault.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/fault.cpp.o.d"
  "CMakeFiles/nwcache_machine.dir/machine/io_drive.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/io_drive.cpp.o.d"
  "CMakeFiles/nwcache_machine.dir/machine/machine.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/machine.cpp.o.d"
  "CMakeFiles/nwcache_machine.dir/machine/metrics.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/metrics.cpp.o.d"
  "CMakeFiles/nwcache_machine.dir/machine/swap.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/swap.cpp.o.d"
  "CMakeFiles/nwcache_machine.dir/machine/trace.cpp.o"
  "CMakeFiles/nwcache_machine.dir/machine/trace.cpp.o.d"
  "libnwcache_machine.a"
  "libnwcache_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwcache_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
