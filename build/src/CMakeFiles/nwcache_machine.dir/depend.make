# Empty dependencies file for nwcache_machine.
# This may be replaced when dependencies are built.
