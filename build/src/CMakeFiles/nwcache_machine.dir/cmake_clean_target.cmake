file(REMOVE_RECURSE
  "libnwcache_machine.a"
)
