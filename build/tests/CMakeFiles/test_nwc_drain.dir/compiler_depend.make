# Empty compiler generated dependencies file for test_nwc_drain.
# This may be replaced when dependencies are built.
