file(REMOVE_RECURSE
  "CMakeFiles/test_nwc_drain.dir/test_nwc_drain.cpp.o"
  "CMakeFiles/test_nwc_drain.dir/test_nwc_drain.cpp.o.d"
  "test_nwc_drain"
  "test_nwc_drain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nwc_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
