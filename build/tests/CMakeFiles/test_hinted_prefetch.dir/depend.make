# Empty dependencies file for test_hinted_prefetch.
# This may be replaced when dependencies are built.
