file(REMOVE_RECURSE
  "CMakeFiles/test_hinted_prefetch.dir/test_hinted_prefetch.cpp.o"
  "CMakeFiles/test_hinted_prefetch.dir/test_hinted_prefetch.cpp.o.d"
  "test_hinted_prefetch"
  "test_hinted_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hinted_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
