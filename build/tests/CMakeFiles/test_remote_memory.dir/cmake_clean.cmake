file(REMOVE_RECURSE
  "CMakeFiles/test_remote_memory.dir/test_remote_memory.cpp.o"
  "CMakeFiles/test_remote_memory.dir/test_remote_memory.cpp.o.d"
  "test_remote_memory"
  "test_remote_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
