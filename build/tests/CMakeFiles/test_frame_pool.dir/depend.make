# Empty dependencies file for test_frame_pool.
# This may be replaced when dependencies are built.
