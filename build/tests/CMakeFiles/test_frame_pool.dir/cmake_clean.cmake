file(REMOVE_RECURSE
  "CMakeFiles/test_frame_pool.dir/test_frame_pool.cpp.o"
  "CMakeFiles/test_frame_pool.dir/test_frame_pool.cpp.o.d"
  "test_frame_pool"
  "test_frame_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
