file(REMOVE_RECURSE
  "CMakeFiles/test_dcd.dir/test_dcd.cpp.o"
  "CMakeFiles/test_dcd.dir/test_dcd.cpp.o.d"
  "test_dcd"
  "test_dcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
