# Empty compiler generated dependencies file for test_dcd.
# This may be replaced when dependencies are built.
