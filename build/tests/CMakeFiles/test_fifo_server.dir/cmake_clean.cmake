file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_server.dir/test_fifo_server.cpp.o"
  "CMakeFiles/test_fifo_server.dir/test_fifo_server.cpp.o.d"
  "test_fifo_server"
  "test_fifo_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
