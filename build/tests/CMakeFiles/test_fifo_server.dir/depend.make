# Empty dependencies file for test_fifo_server.
# This may be replaced when dependencies are built.
