file(REMOVE_RECURSE
  "CMakeFiles/test_edge_configs.dir/test_edge_configs.cpp.o"
  "CMakeFiles/test_edge_configs.dir/test_edge_configs.cpp.o.d"
  "test_edge_configs"
  "test_edge_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
