# Empty dependencies file for test_edge_configs.
# This may be replaced when dependencies are built.
