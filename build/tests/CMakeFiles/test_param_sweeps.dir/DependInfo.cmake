
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_param_sweeps.cpp" "tests/CMakeFiles/test_param_sweeps.dir/test_param_sweeps.cpp.o" "gcc" "tests/CMakeFiles/test_param_sweeps.dir/test_param_sweeps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nwcache_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nwcache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
