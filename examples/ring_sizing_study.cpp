// Ring sizing study: sweep the NWCache channel capacity (i.e. fiber length)
// and watch the trade-off the paper discusses in section 4 — more storage
// absorbs bigger swap bursts, but a longer ring raises the circulation
// latency paid by victim reads and interface drains.
//
//   ./ring_sizing_study [app] [scale] [--jobs=N]
//
// The five ring sizes are independent simulations and run concurrently
// (--jobs=1 forces the serial order).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "nwcache/optical_ring.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  std::string app = "sor";
  double scale = 1.0;
  unsigned jobs = 0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(a.c_str() + 7, nullptr, 10));
    } else if (positional == 0) {
      app = a;
      ++positional;
    } else {
      scale = std::atof(a.c_str());
      ++positional;
    }
  }

  std::printf("NWCache ring sizing study: %s at scale %.2f\n"
              "(round-trip latency scales with per-channel capacity: the ring\n"
              "IS the storage medium)\n\n", app.c_str(), scale);

  const std::vector<std::uint64_t> sizes_kb = {16, 32, 64, 128, 256};
  std::vector<machine::MachineConfig> cfgs;
  for (std::uint64_t kb : sizes_kb) {
    machine::MachineConfig cfg;
    cfg.withSystem(machine::SystemKind::kNWCache, machine::Prefetch::kOptimal);
    cfg.ring_channel_bytes = kb * 1024;
    // Fiber length (and thus circulation time) scales with capacity.
    cfg.ring_round_trip_us = 52.0 * static_cast<double>(kb) / 64.0;
    cfgs.push_back(cfg);
  }

  std::vector<apps::RunSummary> runs(cfgs.size());
  util::ParallelExecutor exec(jobs);
  exec.forEachIndex(cfgs.size(),
                    [&](std::size_t i) { runs[i] = apps::runApp(cfgs[i], app, scale); });

  util::AsciiTable t({"Channel KB", "Pages/ch", "Round trip (us)", "Exec (Mpc)",
                      "Ring hit rate", "Avg swap-out (Kpc)"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const std::uint64_t kb = sizes_kb[i];
    const apps::RunSummary& s = runs[i];
    t.addRow({util::AsciiTable::fmtInt(static_cast<long long>(kb)),
              util::AsciiTable::fmtInt(static_cast<long long>(kb / 4)),
              util::AsciiTable::fmt(cfgs[i].ring_round_trip_us),
              util::AsciiTable::fmt(static_cast<double>(s.exec_time) / 1e6),
              util::AsciiTable::fmtPct(s.metrics.ring_read_hits.rate()),
              util::AsciiTable::fmt(s.metrics.swap_out_ticks.mean() / 1e3)});
  }
  t.print(std::cout);
  return 0;
}
