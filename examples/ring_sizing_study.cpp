// Ring sizing study: sweep the NWCache channel capacity (i.e. fiber length)
// and watch the trade-off the paper discusses in section 4 — more storage
// absorbs bigger swap bursts, but a longer ring raises the circulation
// latency paid by victim reads and interface drains.
//
//   ./ring_sizing_study [app] [scale]
#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "apps/runner.hpp"
#include "nwcache/optical_ring.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  const std::string app = argc > 1 ? argv[1] : "sor";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("NWCache ring sizing study: %s at scale %.2f\n"
              "(round-trip latency scales with per-channel capacity: the ring\n"
              "IS the storage medium)\n\n", app.c_str(), scale);

  util::AsciiTable t({"Channel KB", "Pages/ch", "Round trip (us)", "Exec (Mpc)",
                      "Ring hit rate", "Avg swap-out (Kpc)"});
  for (std::uint64_t kb : {16, 32, 64, 128, 256}) {
    machine::MachineConfig cfg;
    cfg.withSystem(machine::SystemKind::kNWCache, machine::Prefetch::kOptimal);
    cfg.ring_channel_bytes = kb * 1024;
    // Fiber length (and thus circulation time) scales with capacity.
    cfg.ring_round_trip_us = 52.0 * static_cast<double>(kb) / 64.0;
    const apps::RunSummary s = apps::runApp(cfg, app, scale);
    t.addRow({util::AsciiTable::fmtInt(static_cast<long long>(kb)),
              util::AsciiTable::fmtInt(static_cast<long long>(kb / 4)),
              util::AsciiTable::fmt(cfg.ring_round_trip_us),
              util::AsciiTable::fmt(static_cast<double>(s.exec_time) / 1e6),
              util::AsciiTable::fmtPct(s.metrics.ring_read_hits.rate()),
              util::AsciiTable::fmt(s.metrics.swap_out_ticks.mean() / 1e3)});
  }
  t.print(std::cout);
  return 0;
}
