// Trace analysis: record every page-grain event of a run and mine it
// offline — fault source mix, page re-fault behaviour (reuse), inter-fault
// gaps, the hottest pages — then dump the raw trace to CSV.
//
//   ./trace_analysis [app] [scale] [standard|nwcache]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  const std::string app = argc > 1 ? argv[1] : "sor";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
  const bool nwcache = argc > 3 ? std::string(argv[3]) == "nwcache" : true;

  machine::MachineConfig cfg;
  cfg.withSystem(nwcache ? machine::SystemKind::kNWCache
                         : machine::SystemKind::kStandard,
                 machine::Prefetch::kNaive);

  machine::TraceBuffer trace;
  std::printf("Tracing %s (%s, naive prefetch, scale %.2f)...\n", app.c_str(),
              nwcache ? "nwcache" : "standard", scale);
  const apps::RunSummary s = apps::runApp(cfg, app, scale, &trace);
  std::printf("run complete: exec=%.1f Mpcycles, %zu trace events, verified=%s\n\n",
              static_cast<double>(s.exec_time) / 1e6, trace.size(),
              s.verified ? "yes" : "NO");

  // Event mix.
  util::AsciiTable mix({"Event", "Count"});
  for (auto k : {machine::TraceKind::kFaultDiskHit, machine::TraceKind::kFaultDiskMiss,
                 machine::TraceKind::kFaultRingHit, machine::TraceKind::kSwapOutDisk,
                 machine::TraceKind::kSwapOutRing, machine::TraceKind::kCleanEviction,
                 machine::TraceKind::kNack}) {
    mix.addRow({machine::toString(k),
                util::AsciiTable::fmtInt(static_cast<long long>(trace.count(k)))});
  }
  mix.print(std::cout);

  // Per-page fault counts: how much page re-fetching (thrashing) happened?
  std::map<sim::PageId, int> fault_counts;
  std::map<sim::PageId, sim::Tick> last_fault;
  sim::Accumulator refault_gap;
  for (const auto& e : trace.events()) {
    if (e.kind != machine::TraceKind::kFaultDiskHit &&
        e.kind != machine::TraceKind::kFaultDiskMiss &&
        e.kind != machine::TraceKind::kFaultRingHit) {
      continue;
    }
    auto [it, fresh] = last_fault.try_emplace(e.page, e.at);
    if (!fresh) {
      refault_gap.add(static_cast<double>(e.at - it->second));
      it->second = e.at;
    }
    fault_counts[e.page]++;
  }
  std::size_t refaulted = 0;
  int max_faults = 0;
  sim::PageId hottest = sim::kNoPage;
  for (const auto& [page, n] : fault_counts) {
    if (n > 1) ++refaulted;
    if (n > max_faults) {
      max_faults = n;
      hottest = page;
    }
  }
  std::printf("\n%zu distinct pages faulted; %zu were re-faulted after eviction.\n",
              fault_counts.size(), refaulted);
  if (hottest != sim::kNoPage) {
    std::printf("hottest page: %lld, faulted %d times\n",
                static_cast<long long>(hottest), max_faults);
  }
  if (refault_gap.count() > 0) {
    std::printf("re-fault gap: mean %.0f Kpcycles (min %.0f, max %.0f)\n",
                refault_gap.mean() / 1e3, refault_gap.min() / 1e3,
                refault_gap.max() / 1e3);
  }

  const std::string csv = "trace_" + app + ".csv";
  trace.dumpCsv(csv);
  std::printf("\nraw trace written to %s\n", csv.c_str());
  return 0;
}
