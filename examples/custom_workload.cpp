// Custom workload: how to write your own out-of-core application against
// the public API (AppContext + MappedFile) instead of using the built-in
// registry. The workload is an out-of-core blocked matrix transpose — a
// write-heavy access pattern the paper's introduction motivates.
#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "apps/app_context.hpp"
#include "machine/machine.hpp"
#include "util/table.hpp"

namespace {

using namespace nwc;

struct Transpose {
  std::size_t n = 768;  // 768x768 doubles = 4.5 MB: pages heavily
  std::size_t block = 64;
  apps::MappedFile<double> src, dst;

  void setup(apps::AppContext& ctx) {
    src = ctx.map<double>(n * n, "transpose_src");
    dst = ctx.map<double>(n * n, "transpose_dst");
    for (std::size_t i = 0; i < n * n; ++i) {
      src.raw(i) = static_cast<double>(i);
    }
  }

  // Each cpu transposes a strided set of blocks; no synchronization is
  // needed beyond the implicit end-of-run join (writes are disjoint).
  sim::Task<> run(apps::AppContext& ctx, int cpu) {
    const std::size_t nb = n / block;
    std::size_t tile = 0;
    for (std::size_t bi = 0; bi < nb; ++bi) {
      for (std::size_t bj = 0; bj < nb; ++bj, ++tile) {
        if (tile % static_cast<std::size_t>(ctx.numCpus()) !=
            static_cast<std::size_t>(cpu)) {
          continue;
        }
        for (std::size_t i = bi * block; i < (bi + 1) * block; ++i) {
          for (std::size_t j = bj * block; j < (bj + 1) * block; ++j) {
            const double v = co_await src.get(cpu, i * n + j);
            co_await dst.set(cpu, j * n + i, v);
            ctx.compute(cpu, 2);
          }
        }
      }
    }
  }

  bool verify() const {
    for (std::size_t i = 0; i < n; i += 97) {
      for (std::size_t j = 0; j < n; j += 89) {
        if (dst.raw(j * n + i) != src.raw(i * n + j)) return false;
      }
    }
    return true;
  }
};

sim::Task<> cpuMain(apps::AppContext& ctx, Transpose& t, int cpu) {
  co_await t.run(ctx, cpu);
  co_await ctx.machine().fence(cpu);
  ctx.machine().cpuDone(cpu);
}

machine::Metrics runOn(machine::SystemKind sys, bool* ok, sim::Tick* exec) {
  machine::MachineConfig cfg;
  cfg.withSystem(sys, machine::Prefetch::kOptimal);
  machine::Machine m(cfg);
  apps::AppContext ctx(m);
  Transpose t;
  t.setup(ctx);
  m.start();
  for (int cpu = 0; cpu < cfg.num_nodes; ++cpu) {
    m.engine().spawn(cpuMain(ctx, t, cpu));
  }
  m.engine().run();
  *ok = t.verify() && m.checkInvariants().empty();
  *exec = m.metrics().executionTime();
  return m.metrics();
}

}  // namespace

int main() {
  std::printf("Custom out-of-core workload: 768x768 blocked matrix transpose\n"
              "(4.5 MB of data against 2 MB of total machine memory)\n\n");

  util::AsciiTable t({"System", "Exec (Mpcycles)", "Faults", "Swap-outs",
                      "Avg swap-out (Kpc)", "NoFree (Mpc)", "OK"});
  for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
    bool ok = false;
    sim::Tick exec = 0;
    const machine::Metrics met = runOn(sys, &ok, &exec);
    t.addRow({machine::toString(sys),
              util::AsciiTable::fmt(static_cast<double>(exec) / 1e6),
              util::AsciiTable::fmtInt(static_cast<long long>(met.faults)),
              util::AsciiTable::fmtInt(static_cast<long long>(met.swap_outs)),
              util::AsciiTable::fmt(met.swap_out_ticks.mean() / 1e3),
              util::AsciiTable::fmt(static_cast<double>(met.totalNoFree()) / 1e6),
              ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::printf("\nA transpose dirties every destination page exactly once, so the\n"
              "run is one long swap-out burst: ideal territory for the NWCache's\n"
              "write staging.\n");
  return 0;
}
