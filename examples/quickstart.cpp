// Quickstart: run one of the paper's applications on both machines and
// print the headline comparison.
//
//   ./quickstart [app] [scale]
//
// Apps: em3d fft gauss lu mg radix sor (default: mg, scale 1.0).
#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "apps/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  const std::string app = argc > 1 ? argv[1] : "mg";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("NWCache quickstart: %s at scale %.2f on an 8-node machine\n\n",
              app.c_str(), scale);

  util::AsciiTable t({"System", "Prefetch", "Exec (Mpcycles)", "Faults",
                      "Swap-outs", "Avg swap-out (Kpc)", "Ring hits", "Verified"});
  for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
    for (auto pf : {machine::Prefetch::kOptimal, machine::Prefetch::kNaive}) {
      machine::MachineConfig cfg;
      cfg.withSystem(sys, pf);  // Table 1 defaults + the paper's best min-free
      const apps::RunSummary s = apps::runApp(cfg, app, scale);
      t.addRow({machine::toString(sys), machine::toString(pf),
                util::AsciiTable::fmt(static_cast<double>(s.exec_time) / 1e6),
                util::AsciiTable::fmtInt(static_cast<long long>(s.metrics.faults)),
                util::AsciiTable::fmtInt(static_cast<long long>(s.metrics.swap_outs)),
                util::AsciiTable::fmt(s.metrics.swap_out_ticks.mean() / 1e3),
                util::AsciiTable::fmtPct(s.metrics.ring_read_hits.rate()),
                s.ok() ? "yes" : "NO"});
    }
  }
  t.print(std::cout);

  std::printf("\nThe NWCache machine wins mainly on swap-out staging: its pages\n"
              "park on the optical ring in ~5 Kpcycles instead of waiting for a\n"
              "mechanical disk write. See DESIGN.md for the full model.\n");
  return 0;
}
