// Quickstart: run one of the paper's applications on both machines and
// print the headline comparison. The four configurations are independent
// simulations and run concurrently (--jobs=1 forces the serial order).
//
//   ./quickstart [app] [scale] [--jobs=N]
//
// Apps: em3d fft gauss lu mg radix sor (default: mg, scale 1.0).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  std::string app = "mg";
  double scale = 1.0;
  unsigned jobs = 0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(a.c_str() + 7, nullptr, 10));
    } else if (positional == 0) {
      app = a;
      ++positional;
    } else {
      scale = std::atof(a.c_str());
      ++positional;
    }
  }

  std::printf("NWCache quickstart: %s at scale %.2f on an 8-node machine\n\n",
              app.c_str(), scale);

  std::vector<machine::MachineConfig> cfgs;
  for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
    for (auto pf : {machine::Prefetch::kOptimal, machine::Prefetch::kNaive}) {
      machine::MachineConfig cfg;
      cfg.withSystem(sys, pf);  // Table 1 defaults + the paper's best min-free
      cfgs.push_back(cfg);
    }
  }

  std::vector<apps::RunSummary> runs(cfgs.size());
  util::ParallelExecutor exec(jobs);
  exec.forEachIndex(cfgs.size(),
                    [&](std::size_t i) { runs[i] = apps::runApp(cfgs[i], app, scale); });

  util::AsciiTable t({"System", "Prefetch", "Exec (Mpcycles)", "Faults",
                      "Swap-outs", "Avg swap-out (Kpc)", "Ring hits", "Verified"});
  for (const apps::RunSummary& s : runs) {
    t.addRow({machine::toString(s.cfg.system), machine::toString(s.cfg.prefetch),
              util::AsciiTable::fmt(static_cast<double>(s.exec_time) / 1e6),
              util::AsciiTable::fmtInt(static_cast<long long>(s.metrics.faults)),
              util::AsciiTable::fmtInt(static_cast<long long>(s.metrics.swap_outs)),
              util::AsciiTable::fmt(s.metrics.swap_out_ticks.mean() / 1e3),
              util::AsciiTable::fmtPct(s.metrics.ring_read_hits.rate()),
              s.ok() ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::printf("\nThe NWCache machine wins mainly on swap-out staging: its pages\n"
              "park on the optical ring in ~5 Kpcycles instead of waiting for a\n"
              "mechanical disk write. See DESIGN.md for the full model.\n");
  return 0;
}
