// Burstiness timeline: visualize the claim at the heart of the paper —
// "page swap-outs are often very bursty" — by sampling machine state over a
// run and rendering ASCII sparklines of free frames, in-flight swap-outs,
// controller-cache pressure, and (on the NWCache machine) ring occupancy.
//
//   ./burstiness_timeline [app] [scale]
#include <cstdio>
#include <cstdlib>

#include "apps/app_context.hpp"
#include "apps/registry.hpp"
#include "machine/machine.hpp"
#include "nwcache/interface.hpp"
#include "nwcache/optical_ring.hpp"

namespace {

using namespace nwc;

sim::Task<> cpuMain(apps::AppContext& ctx, apps::AppInstance& app, int cpu) {
  co_await app.run(ctx, cpu);
  co_await ctx.machine().fence(cpu);
  ctx.machine().cpuDone(cpu);
}

void runOnce(machine::SystemKind sys, const std::string& app_name, double scale) {
  machine::MachineConfig cfg;
  cfg.withSystem(sys, machine::Prefetch::kOptimal);
  machine::Machine m(cfg);
  m.enableTimeline();

  auto app = apps::findApp(app_name)->make(scale);
  apps::AppContext ctx(m);
  app->setup(ctx);
  m.start();
  for (int cpu = 0; cpu < cfg.num_nodes; ++cpu) {
    m.engine().spawn(cpuMain(ctx, *app, cpu));
  }
  m.engine().run();

  const auto* tl = m.timeline();
  std::printf("%s machine (exec %.0f Mpcycles, %llu swap-outs, verified=%s)\n",
              machine::toString(sys),
              static_cast<double>(m.metrics().executionTime()) / 1e6,
              static_cast<unsigned long long>(m.metrics().swap_outs),
              app->verify() ? "yes" : "NO");
  std::printf("  free frames     |%s| peak %.0f\n",
              tl->free_frames.sparkline().c_str(), tl->free_frames.maxValue());
  std::printf("  swaps in flight |%s| peak %.0f\n",
              tl->swaps_in_flight.sparkline().c_str(),
              tl->swaps_in_flight.maxValue());
  std::printf("  dirty ctl slots |%s| peak %.0f\n",
              tl->dirty_slots.sparkline().c_str(), tl->dirty_slots.maxValue());
  if (sys == machine::SystemKind::kNWCache) {
    std::printf("  ring occupancy  |%s| peak %.0f of %d\n",
                tl->ring_occupancy.sparkline().c_str(),
                tl->ring_occupancy.maxValue(),
                cfg.ring_channels * m.ring()->capacityPages());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "sor";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("Swap-out burstiness of %s at scale %.2f under optimal "
              "prefetching\n(time runs left to right; each column shows the "
              "bucket peak)\n\n", app.c_str(), scale);
  runOnce(nwc::machine::SystemKind::kStandard, app, scale);
  runOnce(nwc::machine::SystemKind::kNWCache, app, scale);
  std::printf("The standard machine's in-flight swap-outs saturate during\n"
              "bursts while free frames crater; the NWCache absorbs the same\n"
              "bursts into the ring within microseconds.\n");
  return 0;
}
