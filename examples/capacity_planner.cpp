// Capacity planner: explore the delay-line storage law of section 3.2 —
// how much write-cache capacity a WDM ring provides as a function of fiber
// length, channel count and transmission rate — and what that does to the
// round-trip (search) latency seen by victim reads.
//
//   ./capacity_planner [target_capacity_kb_per_channel]
#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "nwcache/optical_ring.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  const double target_kb = argc > 1 ? std::atof(argv[1]) : 64.0;

  std::printf("Optical delay-line capacity planning (capacity_bits = channels x\n"
              "length x rate / 2.1e8 m/s; paper section 2 and 3.2)\n\n");

  // Part 1: capacity of various (channels, length, rate) designs.
  util::AsciiTable t1({"Channels", "Fiber (km)", "Rate (Gb/s)", "Capacity (KB)",
                       "Pages", "Round trip (us)"});
  const double kLight = 2.1e8;
  for (int channels : {8, 32, 128, 5000 /* OTDM projection, section 4 */}) {
    for (double km : {1.0, 10.0, 50.0}) {
      const double rate_bps = 10e9;  // 10 Gb/s per channel
      const double bits = ring::delayLineCapacityBits(channels, km * 1000.0, rate_bps);
      const double kb = bits / 8.0 / 1024.0;
      const double rt_us = km * 1000.0 / kLight * 1e6;
      t1.addRow({util::AsciiTable::fmtInt(channels), util::AsciiTable::fmt(km),
                 util::AsciiTable::fmt(rate_bps / 1e9), util::AsciiTable::fmt(kb),
                 util::AsciiTable::fmtInt(static_cast<long long>(kb / 4.0)),
                 util::AsciiTable::fmt(rt_us)});
    }
  }
  t1.print(std::cout);

  // Part 2: fiber length needed for a target per-channel capacity.
  std::printf("\nFiber needed for %.0f KB per channel:\n", target_kb);
  util::AsciiTable t2({"Rate (Gb/s)", "Fiber (km)", "Round trip (us)",
                       "Page pass time (us)"});
  for (double gbps : {2.5, 10.0, 40.0}) {
    const double rate = gbps * 1e9;
    const double len = ring::fiberLengthForCapacity(
        static_cast<std::uint64_t>(target_kb * 1024.0), rate);
    const double rt_us = len / kLight * 1e6;
    const double page_us = 4096.0 * 8.0 / rate * 1e6;
    t2.addRow({util::AsciiTable::fmt(gbps), util::AsciiTable::fmt(len / 1000.0, 2),
               util::AsciiTable::fmt(rt_us), util::AsciiTable::fmt(page_us, 2)});
  }
  t2.print(std::cout);

  std::printf("\nTable 1's configuration (8 channels x 64 KB, 52 us round trip,\n"
              "1.25 GB/s) corresponds to ~11 km of fiber at 10 Gb/s per channel.\n"
              "Longer fiber buys capacity linearly but raises the victim-read\n"
              "search latency by the same factor.\n");
  return 0;
}
