// perf_suite: the simulator's own performance benchmark.
//
//   perf_suite [--tag=NAME] [--out=FILE] [--trials=N] [--warmup=N]
//              [--scale=F] [--jobs=N]
//
// Runs a pinned canonical workload set — one execution-driven run per
// SystemKind, a warm-trace-cache replay, and a small parallel grid — with
// warmup plus median-of-N trials, and emits a schema-versioned
// BENCH_<tag>.json: per-phase host wall ms (from the obs::prof phase
// tree), pages/s throughput, peak RSS, trace-cache hit rate, thread-pool
// utilization, and host provenance. tools/nwcperf compares two such files
// and gates CI on the ratio.
//
// This watches the *simulator*, not the simulated machine: simulated
// results are pinned by config+seed and only used to sanity-check that
// every trial simulated the same work.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "apps/trace_cache.hpp"
#include "sim/engine.hpp"
#include "machine/arena.hpp"
#include "machine/config.hpp"
#include "obs/bench_compare.hpp"
#include "obs/profiler.hpp"
#include "obs/run_meta.hpp"
#include "util/host.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace {

using namespace nwc;

struct SuiteOptions {
  std::string tag = "local";
  std::string out;          // default BENCH_<tag>.json
  unsigned trials = 5;
  unsigned warmup = 1;
  double scale = 0.1;       // pinned canonical scale
  unsigned jobs = 2;        // parallel-grid workload width
  unsigned sim_threads = 4; // partitions for the radix64/simtN workload
};

[[noreturn]] void usage(int code) {
  std::printf(
      "usage: perf_suite [options]\n"
      "  --tag=NAME    label baked into the file name and JSON (default local)\n"
      "  --out=FILE    output path (default BENCH_<tag>.json)\n"
      "  --trials=N    measured trials per workload, median reported (default 5)\n"
      "  --warmup=N    unmeasured warmup runs per workload (default 1)\n"
      "  --scale=F     input scale for the canonical workloads (default 0.1)\n"
      "  --jobs=N      threads for the parallel-grid workload (default 2)\n"
      "  --sim-threads=N  partitions for the PDES workload (default 4)\n");
  std::exit(code);
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// One trial's raw readings.
struct TrialSample {
  double wall_ms = 0.0;
  double pages_per_s = 0.0;
  double events_per_s = 0.0;
  double trace_hit_rate = 0.0;
  double pool_utilization = 0.0;
  std::map<std::string, double> phase_wall_ms;
};

// Flattens the profiler's top-level phases into name -> wall ms. Nested
// phases (event-loop/destage-drain) are folded in as "a/b" keys.
void collectPhases(const obs::prof::Node& n, const std::string& prefix,
                   std::map<std::string, double>& out) {
  for (const auto& [name, child] : n.children) {
    const std::string key = prefix.empty() ? name : prefix + "/" + name;
    out[key] += static_cast<double>(child.wall_ns) / 1e6;
    collectPhases(child, key, out);
  }
}

struct MeasuredWorkload {
  obs::bench::Workload result;
  std::uint64_t check_exec_pcycles = 0;  // simulated result, must be stable
};

// Runs `body` (one full simulation) warmup+trials times and reduces the
// trials to medians. `body` returns the trial's throughput numerator
// (pages touched by the paging system) and events processed.
template <typename Body>
MeasuredWorkload measure(const std::string& name, const SuiteOptions& opt,
                         Body&& body) {
  std::fprintf(stderr, "perf_suite: %s (%u warmup + %u trials)\n", name.c_str(),
               opt.warmup, opt.trials);
  std::vector<TrialSample> samples;
  std::uint64_t check = 0;
  for (unsigned t = 0; t < opt.warmup + opt.trials; ++t) {
    obs::prof::reset();
    const auto& stats_before = apps::traceCacheStats();
    const std::uint64_t replays0 = stats_before.replays.load();
    const std::uint64_t total0 = replays0 + stats_before.executes.load() +
                                 stats_before.records.load() +
                                 stats_before.fallbacks.load();
    const auto w0 = std::chrono::steady_clock::now();
    const apps::RunSummary s = body();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - w0)
                               .count();
    if (!s.verified) {
      throw std::runtime_error(name + ": simulation failed verification");
    }
    if (check == 0) {
      check = static_cast<std::uint64_t>(s.exec_time);
    } else if (check != static_cast<std::uint64_t>(s.exec_time)) {
      throw std::runtime_error(name + ": simulated result changed across trials");
    }
    if (t < opt.warmup) continue;

    TrialSample sample;
    sample.wall_ms = wall_ms;
    const double wall_s = wall_ms / 1e3;
    const double pages = static_cast<double>(s.metrics.faults) +
                         static_cast<double>(s.metrics.swap_outs) +
                         static_cast<double>(s.metrics.clean_evictions);
    sample.pages_per_s = wall_s > 0.0 ? pages / wall_s : 0.0;
    sample.events_per_s =
        wall_s > 0.0 ? static_cast<double>(s.engine_events) / wall_s : 0.0;
    const auto& stats_after = apps::traceCacheStats();
    const std::uint64_t replays_d = stats_after.replays.load() - replays0;
    const std::uint64_t total_d =
        stats_after.replays.load() + stats_after.executes.load() +
        stats_after.records.load() + stats_after.fallbacks.load() - total0;
    sample.trace_hit_rate =
        total_d > 0 ? static_cast<double>(replays_d) / static_cast<double>(total_d)
                    : 0.0;
    const obs::prof::Report rep = obs::prof::snapshot();
    sample.pool_utilization = rep.poolUtilization();
    collectPhases(rep.root, "", sample.phase_wall_ms);
    samples.push_back(std::move(sample));
  }

  MeasuredWorkload out;
  out.check_exec_pcycles = check;
  out.result.name = name;
  auto pick = [&](auto get) {
    std::vector<double> v;
    v.reserve(samples.size());
    for (const TrialSample& s : samples) v.push_back(get(s));
    return median(std::move(v));
  };
  out.result.wall_ms = pick([](const TrialSample& s) { return s.wall_ms; });
  out.result.pages_per_s = pick([](const TrialSample& s) { return s.pages_per_s; });
  out.result.events_per_s =
      pick([](const TrialSample& s) { return s.events_per_s; });
  out.result.trace_hit_rate =
      pick([](const TrialSample& s) { return s.trace_hit_rate; });
  out.result.pool_utilization =
      pick([](const TrialSample& s) { return s.pool_utilization; });
  out.result.peak_rss_bytes = util::peakRssBytes();
  std::map<std::string, std::vector<double>> by_phase;
  for (const TrialSample& s : samples) {
    for (const auto& [k, v] : s.phase_wall_ms) by_phase[k].push_back(v);
  }
  for (auto& [k, v] : by_phase) {
    // A phase missing from some trials (e.g. a one-time trace-store) medians
    // over the trials that saw it; pad with zeros so it medians to zero when
    // most trials skipped it.
    while (v.size() < samples.size()) v.push_back(0.0);
    out.result.phase_wall_ms[k] = median(v);
  }
  return out;
}

// Pure engine churn for the micro/engine-calendar workload: deterministic
// mixed-stride delays so the calendar sees both same-tick batches and
// singleton pops (the two CalendarQueue fast paths).
sim::Task<> churnTask(sim::Engine& e, int lane) {
  for (int i = 0; i < 20000; ++i) co_await e.delay(1 + ((i + lane) & 7));
}

machine::MachineConfig pinnedConfig(machine::SystemKind sys) {
  machine::MachineConfig cfg;
  cfg.withSystem(sys, machine::Prefetch::kOptimal);
  cfg.seed = 0x5eed;
  return cfg;
}

std::string benchJson(const SuiteOptions& opt,
                      const std::vector<obs::bench::Workload>& workloads) {
  std::vector<std::string> wl_json;
  wl_json.reserve(workloads.size());
  for (const obs::bench::Workload& w : workloads) {
    util::JsonObject phases;
    for (const auto& [k, v] : w.phase_wall_ms) phases.add(k, v);
    util::JsonObject o;
    o.add("name", w.name)
        .add("wall_ms", w.wall_ms)
        .add("pages_per_s", w.pages_per_s)
        .add("events_per_s", w.events_per_s)
        .add("peak_rss_bytes", w.peak_rss_bytes)
        .add("trace_hit_rate", w.trace_hit_rate)
        .add("pool_utilization", w.pool_utilization)
        .addRaw("phases", phases.str());
    wl_json.push_back(o.str());
  }
  util::JsonObject o;
  o.add("schema", obs::bench::kBenchSchema)
      .add("tag", opt.tag)
      .add("git_sha", obs::buildGitSha())
      .add("trials", static_cast<std::uint64_t>(opt.trials))
      .add("scale", opt.scale)
      .addRaw("host", util::hostInfoJson())
      .addRaw("workloads", util::jsonArray(wl_json));
  return o.str();
}

}  // namespace

int main(int argc, char** argv) {
  SuiteOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* prefix) { return a.substr(std::strlen(prefix)); };
    if (a.rfind("--tag=", 0) == 0) {
      opt.tag = val("--tag=");
    } else if (a.rfind("--out=", 0) == 0) {
      opt.out = val("--out=");
    } else if (a.rfind("--trials=", 0) == 0) {
      opt.trials = static_cast<unsigned>(std::atoi(val("--trials=").c_str()));
    } else if (a.rfind("--warmup=", 0) == 0) {
      opt.warmup = static_cast<unsigned>(std::atoi(val("--warmup=").c_str()));
    } else if (a.rfind("--scale=", 0) == 0) {
      opt.scale = std::atof(val("--scale=").c_str());
    } else if (a.rfind("--jobs=", 0) == 0) {
      opt.jobs = static_cast<unsigned>(std::atoi(val("--jobs=").c_str()));
    } else if (a.rfind("--sim-threads=", 0) == 0) {
      opt.sim_threads =
          static_cast<unsigned>(std::atoi(val("--sim-threads=").c_str()));
    } else if (a == "--help" || a == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "perf_suite: unknown flag %s\n", a.c_str());
      usage(2);
    }
  }
  if (opt.trials == 0 || opt.scale <= 0.0 || opt.scale > 1.0 || opt.jobs == 0 ||
      opt.sim_threads == 0) {
    std::fprintf(stderr,
                 "perf_suite: need --trials>0, --jobs>0, --sim-threads>0, "
                 "--scale in (0,1]\n");
    return 2;
  }
  if (opt.out.empty()) opt.out = "BENCH_" + opt.tag + ".json";

  try {
    // The profiler is the suite's measuring instrument: enabled for the whole
    // process, reset per trial.
    obs::prof::enable();
    std::vector<obs::bench::Workload> workloads;

    // 1) Execution-driven canonical run per SystemKind (radix: the paper's
    // most write-intensive kernel, so every backend's destage path runs).
    static constexpr machine::SystemKind kSystems[] = {
        machine::SystemKind::kStandard, machine::SystemKind::kNWCache,
        machine::SystemKind::kDCD, machine::SystemKind::kRemoteMemory};
    for (const machine::SystemKind sys : kSystems) {
      const machine::MachineConfig cfg = pinnedConfig(sys);
      const std::string name = std::string("radix/") + machine::toString(sys);
      workloads.push_back(measure(name, opt, [&] {
                            return apps::runApp(cfg, "radix", opt.scale);
                          }).result);
    }

    // 2) Warm trace-cache replay: record once (unmeasured), then replay
    // trials — the trace-load + replay path the batch tools lean on.
    {
      const std::filesystem::path tdir =
          std::filesystem::temp_directory_path() / "nwc_perf_suite_traces";
      std::filesystem::remove_all(tdir);
      const apps::TraceCacheConfig tc{tdir.string(), apps::TraceMode::kAuto};
      const machine::MachineConfig cfg = pinnedConfig(machine::SystemKind::kNWCache);
      apps::runAppCached(cfg, "radix", opt.scale, tc, apps::ObsSinks{});  // record
      workloads.push_back(measure("radix/replay-warm", opt, [&] {
                            return apps::runAppCached(cfg, "radix", opt.scale, tc,
                                                      apps::ObsSinks{});
                          }).result);
      std::filesystem::remove_all(tdir);
    }

    // 3) Parallel grid: independent simulations on a work-stealing pool —
    // the thread-pool utilization + arena-reuse path nwcbatch exercises.
    {
      static const char* kApps[] = {"radix", "sor", "mg", "gauss"};
      const machine::MachineConfig cfg = pinnedConfig(machine::SystemKind::kNWCache);
      workloads.push_back(
          measure("parallel-grid/nwcache", opt, [&] {
            std::vector<apps::RunSummary> results(std::size(kApps));
            util::ParallelExecutor exec(opt.jobs);
            exec.forEachIndex(std::size(kApps), [&](std::size_t i) {
              thread_local machine::MachineArena arena;
              apps::ObsSinks sinks;
              sinks.arena = &arena;
              results[i] = apps::runApp(cfg, kApps[i], opt.scale, sinks);
            });
            // Reduce to one summary: verification and the work totals the
            // throughput numbers are derived from.
            apps::RunSummary agg = results[0];
            for (std::size_t i = 1; i < results.size(); ++i) {
              agg.verified = agg.verified && results[i].verified;
              agg.exec_time += results[i].exec_time;
              agg.engine_events += results[i].engine_events;
              agg.metrics.faults += results[i].metrics.faults;
              agg.metrics.swap_outs += results[i].metrics.swap_outs;
              agg.metrics.clean_evictions += results[i].metrics.clean_evictions;
            }
            return agg;
          }).result);
    }

    // 4) PDES: the 64-node canonical workload, serial vs partitioned. Both
    // simulate identical work (results are byte-identical by construction);
    // the wall-clock delta is pure engine cost of conservative windows.
    {
      machine::MachineConfig cfg = pinnedConfig(machine::SystemKind::kNWCache);
      cfg.num_nodes = 64;
      cfg.num_io_nodes = 8;
      workloads.push_back(measure("radix64/serial", opt, [&] {
                            return apps::runApp(cfg, "radix", opt.scale);
                          }).result);
      apps::ObsSinks sinks;
      sinks.sim_threads = static_cast<int>(opt.sim_threads);
      workloads.push_back(
          measure("radix64/simt" + std::to_string(opt.sim_threads), opt, [&] {
            return apps::runApp(cfg, "radix", opt.scale, sinks);
          }).result);
    }

    // 5) Block-trace front end: synthetic generation (inside the runner's
    // "setup" phase) plus the blockAccess serve loop — the storage-workload
    // hot path nwcgen-produced traces replay through. Scaled like the
    // kernels so --scale trims it proportionally.
    {
      const machine::MachineConfig cfg = pinnedConfig(machine::SystemKind::kNWCache);
      static const char* kSpec =
          "synth:clients=32;objects=8192;ops=20000;seed=24301";
      workloads.push_back(measure("synth/blockserve", opt, [&] {
                            return apps::runApp(cfg, kSpec, opt.scale);
                          }).result);
    }

    // 6) Engine/calendar micro: event-loop churn with no machine model on
    // top, isolating CalendarQueue push/pop and coroutine frame recycling.
    // The summary is fabricated (there is no app to verify); exec_time pins
    // determinism across trials like every other workload.
    workloads.push_back(measure("micro/engine-calendar", opt, [&] {
                          sim::Engine e;
                          for (int lane = 0; lane < 64; ++lane) {
                            e.spawn(churnTask(e, lane));
                          }
                          e.run();
                          apps::RunSummary s;
                          s.app = "micro";
                          s.verified = true;
                          s.exec_time = e.now();
                          s.engine_events = e.eventsProcessed();
                          return s;
                        }).result);

    const std::string json = benchJson(opt, workloads);
    {
      std::ofstream out(opt.out, std::ios::binary);
      if (!out) throw std::runtime_error("perf_suite: cannot open " + opt.out);
      out << json << "\n";
      if (!out) throw std::runtime_error("perf_suite: write failed for " + opt.out);
    }
    // Round-trip through the comparison parser so an emit/parse mismatch
    // fails here, not later in CI.
    obs::bench::readBenchFile(opt.out);
    std::printf("wrote %s (%zu workloads, %u trials each)\n", opt.out.c_str(),
                workloads.size(), opt.trials);
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "perf_suite: %s\n", ex.what());
    return 1;
  }
}
