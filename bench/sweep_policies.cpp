// Write-cache policy study: which admission / destage policy wins where?
//
// The paper's NWCache admits every swap-out onto the ring and the DCD
// absorbs every batch into its log; both destage strictly FIFO. Later
// hybrid write-cache work (bouncer's sieved write buffer, the Optane
// "Writes Hurt" study) argues the policy seam matters more than the cache
// capacity. This sweep crosses the two cache-bearing systems with every
// admission policy (`always`, `lru`, `sieve`) and both destage orders
// (`fifo`, `write-combine`) over the paper's kernels, and reports the
// destage-side pressure next to the end-to-end numbers:
//
//  - `Destage stall` is the ticks destage operations spent queued for a
//    disk arm (Metrics::destage_stall_ticks) — the write cache's back-end
//    cost, which write-combine attacks by issuing fewer, longer writes;
//  - `Batch mean` is pages moved per destage operation;
//  - `Admit rate` shows how aggressively an admission policy sieves
//    (1.00 for `always` by definition).
//
// docs/POLICIES.md carries the measured "which policy when" table from
// this bench; docs/EXPERIMENTS.md describes the workflow.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "sweep_policies", 0.1, {"radix"});

  const machine::SystemKind systems[] = {machine::SystemKind::kNWCache,
                                         machine::SystemKind::kDCD};
  const machine::AdmissionKind admissions[] = {machine::AdmissionKind::kAlways,
                                               machine::AdmissionKind::kLru,
                                               machine::AdmissionKind::kSieve};
  const machine::DestageKind destages[] = {machine::DestageKind::kFifo,
                                           machine::DestageKind::kWriteCombine};

  auto cfgFor = [&](machine::SystemKind sys, machine::AdmissionKind adm,
                    machine::DestageKind dst) {
    machine::MachineConfig cfg =
        bench::configFor(sys, machine::Prefetch::kOptimal, opt);
    cfg.memory_per_node = 16 * 1024;  // force heavy paging at bench scales
    cfg.ring_admission = adm;
    cfg.destage_policy = dst;
    // Bench-scale working sets are small; shrink the policy tables so the
    // recency gates actually discriminate (512 pages would cover the whole
    // dataset and reduce lru/sieve to `always`).
    cfg.policy_lru_pages = 64;
    cfg.policy_ghost_pages = 256;
    return cfg;
  };

  std::printf("Write-cache policy sweep (optimal prefetch, scale=%.2f)\n",
              opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : systems) {
      for (auto adm : admissions) {
        for (auto dst : destages) {
          plan.push_back({cfgFor(sys, adm, dst), app});
        }
      }
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "System", "Admission", "Destage",
                      "Exec (Mpc)", "Fault mean (pc)", "Destage stall (Mpc)",
                      "Batch mean", "Admit rate"});
  std::vector<std::vector<std::string>> rows;

  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : systems) {
      // The acceptance question: does any non-default policy beat the
      // paper-faithful `always`+`fifo` baseline on destage stall time?
      double base_stall = -1, best_stall = -1;
      std::string best_name;
      for (auto adm : admissions) {
        for (auto dst : destages) {
          const auto s = bench::run(cfgFor(sys, adm, dst), app, opt);
          const auto& m = s.metrics;
          const double stall_mpc =
              static_cast<double>(m.destage_stall_ticks) / 1e6;
          const std::uint64_t decisions = m.policy_admits + m.policy_rejects;
          const double admit_rate =
              decisions ? static_cast<double>(m.policy_admits) /
                              static_cast<double>(decisions)
                        : 1.0;
          const double batch_mean =
              m.destage_writes ? static_cast<double>(m.destage_pages) /
                                     static_cast<double>(m.destage_writes)
                               : 0.0;
          const std::string name = std::string(toString(adm)) + "+" +
                                   toString(dst);
          if (adm == machine::AdmissionKind::kAlways &&
              dst == machine::DestageKind::kFifo) {
            base_stall = stall_mpc;
          } else if (best_stall < 0 || stall_mpc < best_stall) {
            best_stall = stall_mpc;
            best_name = name;
          }
          std::vector<std::string> row = {
              app,
              toString(sys),
              toString(adm),
              toString(dst),
              util::AsciiTable::fmt(static_cast<double>(s.exec_time) / 1e6),
              util::AsciiTable::fmt(m.fault_ticks.mean()),
              util::AsciiTable::fmt(stall_mpc, 3),
              util::AsciiTable::fmt(batch_mean, 2),
              util::AsciiTable::fmt(admit_rate, 3)};
          t.addRow(row);
          rows.push_back(row);
        }
      }
      std::printf(
          "%s/%s: baseline always+fifo stalls %.1f Mpc; best other %s "
          "stalls %.1f Mpc (%+.1f%%)\n",
          app.c_str(), toString(sys), base_stall, best_name.c_str(),
          best_stall,
          base_stall > 0 ? (best_stall - base_stall) / base_stall * 100.0
                         : 0.0);
    }
  }
  bench::emit(opt, t,
              {"app", "system", "admission", "destage", "exec_mpcycles",
               "fault_mean_pcycles", "destage_stall_mpcycles",
               "destage_batch_mean", "admit_rate"},
              rows);
  std::printf(
      "Expected shape: write-combine cuts destage stall on write-heavy "
      "kernels (fewer, longer platter writes); sieved admission trades "
      "write-cache hits for less destage traffic.\n");
  return 0;
}
