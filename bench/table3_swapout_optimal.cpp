// Table 3: average swap-out times under OPTIMAL prefetching (Mpcycles),
// standard multiprocessor vs NWCache multiprocessor.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "table3_swapout_optimal");

  std::printf("Table 3: Average Swap-Out Times (in Mpcycles) under Optimal "
              "Prefetching (scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      plan.push_back({bench::configFor(sys, machine::Prefetch::kOptimal, opt), app});
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "Standard", "NWCache", "Speedup"});
  std::vector<std::vector<std::string>> rows;
  for (const std::string& app : bench::appList(opt)) {
    const auto std_s = bench::run(
        bench::configFor(machine::SystemKind::kStandard, machine::Prefetch::kOptimal, opt),
        app, opt);
    const auto nwc_s = bench::run(
        bench::configFor(machine::SystemKind::kNWCache, machine::Prefetch::kOptimal, opt),
        app, opt);
    const double std_m = std_s.metrics.swap_out_ticks.mean() / 1e6;
    const double nwc_m = nwc_s.metrics.swap_out_ticks.mean() / 1e6;
    std::vector<std::string> row = {
        app, util::AsciiTable::fmt(std_m, 2), util::AsciiTable::fmt(nwc_m, 3),
        nwc_m > 0 ? util::AsciiTable::fmt(std_m / nwc_m) + "x" : "-"};
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"app", "standard_mpcycles", "nwcache_mpcycles", "speedup"}, rows);
  std::printf("Paper shape: NWCache swap-outs 1-3 orders of magnitude faster.\n");
  return 0;
}
