// Ablation (beyond the paper): which NWCache benefit matters?
//   full        = staging + victim reads + mesh bypass
//   no-victim   = faults never snoop the ring (wait for the drain instead)
//   no-bypass   = swap metadata charged as full page traffic on the mesh
//   staging-only= both of the above disabled
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "ablation_features", 1.0, {"sor", "mg"});

  struct Variant {
    const char* name;
    bool victim;
    bool bypass;
  };
  const Variant variants[] = {
      {"full", true, true},
      {"no-victim", false, true},
      {"no-bypass", true, false},
      {"staging-only", false, false},
  };

  std::printf("NWCache feature ablation under optimal prefetching "
              "(execution time in Mpcycles, scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    plan.push_back({bench::configFor(machine::SystemKind::kStandard,
                                     machine::Prefetch::kOptimal, opt),
                    app});
    for (const Variant& v : variants) {
      machine::MachineConfig cfg = bench::configFor(machine::SystemKind::kNWCache,
                                                    machine::Prefetch::kOptimal, opt);
      cfg.ring_victim_reads = v.victim;
      cfg.ring_bypass_network = v.bypass;
      plan.push_back({cfg, app});
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "standard", "full", "no-victim", "no-bypass",
                      "staging-only"});
  std::vector<std::vector<std::string>> rows;

  for (const std::string& app : bench::appList(opt)) {
    std::vector<std::string> row = {app};
    const auto std_s = bench::run(bench::configFor(machine::SystemKind::kStandard,
                                                   machine::Prefetch::kOptimal, opt),
                                  app, opt);
    row.push_back(util::AsciiTable::fmt(static_cast<double>(std_s.exec_time) / 1e6));
    for (const Variant& v : variants) {
      machine::MachineConfig cfg = bench::configFor(machine::SystemKind::kNWCache,
                                                    machine::Prefetch::kOptimal, opt);
      cfg.ring_victim_reads = v.victim;
      cfg.ring_bypass_network = v.bypass;
      const auto s = bench::run(cfg, app, opt);
      row.push_back(util::AsciiTable::fmt(static_cast<double>(s.exec_time) / 1e6));
    }
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"app", "standard", "full", "no_victim", "no_bypass",
                       "staging_only"},
              rows);
  return 0;
}
