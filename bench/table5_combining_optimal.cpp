// Table 5: average write combining under OPTIMAL prefetching (pages per
// physical disk write; maximum possible factor = controller slots = 4).
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "table5_combining_optimal");

  std::printf("Table 5: Average Write Combining Under Optimal Prefetching "
              "(scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      plan.push_back({bench::configFor(sys, machine::Prefetch::kOptimal, opt), app});
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "Standard", "NWCache", "Increase"});
  std::vector<std::vector<std::string>> rows;
  for (const std::string& app : bench::appList(opt)) {
    const auto std_s = bench::run(
        bench::configFor(machine::SystemKind::kStandard, machine::Prefetch::kOptimal, opt),
        app, opt);
    const auto nwc_s = bench::run(
        bench::configFor(machine::SystemKind::kNWCache, machine::Prefetch::kOptimal, opt),
        app, opt);
    const double a = std_s.metrics.write_combining.mean();
    const double b = nwc_s.metrics.write_combining.mean();
    std::vector<std::string> row = {
        app, util::AsciiTable::fmt(a, 2), util::AsciiTable::fmt(b, 2),
        a > 0 ? util::AsciiTable::fmt((b / a - 1.0) * 100.0, 0) + "%" : "-"};
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"app", "standard", "nwcache", "increase_pct"}, rows);
  std::printf("Paper shape: NWCache combining >= standard; significant gains "
              "under optimal prefetching (in-order channel drains).\n");
  return 0;
}
