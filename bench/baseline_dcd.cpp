// Related-work baselines (paper section 6): how does the NWCache compare
// against a DCD machine (Hu & Yang's Disk Caching Disk) and a remote-memory
// paging machine (Felten & Zahorjan)? The paper argues the NWCache wins the
// read-back path against the DCD and that remote paging cannot help when
// every node is computing — this bench quantifies both claims.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "baseline_dcd", 1.0, {"sor", "mg", "em3d"});

  std::vector<bench::PlannedRun> plan;
  for (auto pf : {machine::Prefetch::kOptimal, machine::Prefetch::kNaive}) {
    for (const std::string& app : bench::appList(opt)) {
      for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kDCD,
                       machine::SystemKind::kRemoteMemory,
                       machine::SystemKind::kNWCache}) {
        plan.push_back({bench::configFor(sys, pf, opt), app});
      }
    }
  }
  bench::runAhead(plan, opt);

  for (auto pf : {machine::Prefetch::kOptimal, machine::Prefetch::kNaive}) {
    std::printf("Standard vs DCD vs remote-memory vs NWCache under %s prefetching "
                "(execution Mpcycles / median swap-out Kpcycles, scale=%.2f)\n",
                machine::toString(pf), opt.scale);
    util::AsciiTable t({"Application", "std exec", "dcd exec", "rmt exec", "nwc exec",
                        "std swap p50", "dcd swap p50", "rmt swap p50", "nwc swap p50"});
    std::vector<std::vector<std::string>> rows;
    for (const std::string& app : bench::appList(opt)) {
      std::vector<std::string> row = {app};
      std::vector<std::string> swaps;
      for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kDCD,
                       machine::SystemKind::kRemoteMemory,
                       machine::SystemKind::kNWCache}) {
        const auto s = bench::run(bench::configFor(sys, pf, opt), app, opt);
        row.push_back(util::AsciiTable::fmt(static_cast<double>(s.exec_time) / 1e6));
        swaps.push_back(util::AsciiTable::fmt(
            static_cast<double>(s.metrics.swap_out_hist.quantileUpperBound(0.5)) / 1e3));
      }
      row.insert(row.end(), swaps.begin(), swaps.end());
      t.addRow(row);
      rows.push_back(row);
    }
    bench::emit(opt, t,
                {"app", "std_exec_mpc", "dcd_exec_mpc", "rmt_exec_mpc",
                 "nwc_exec_mpc", "std_swap_p50_kpc", "dcd_swap_p50_kpc",
                 "rmt_swap_p50_kpc", "nwc_swap_p50_kpc"},
                rows);
    std::printf("\n");
  }
  std::printf("Expected shape: DCD fixes most of the standard machine's write\n"
              "stalls but loses the read-back path; remote-memory paging finds\n"
              "no spare frames on a balanced out-of-core machine and degrades\n"
              "to disk swapping (the paper's argument for dismissing it).\n");
  return 0;
}
