// Google-benchmark microbenchmarks for the simulation substrate: event
// throughput, coroutine primitives, analytical servers, model components.
#include <benchmark/benchmark.h>

#include <queue>

#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "net/mesh.hpp"
#include "sim/calendar.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/fifo_server.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"

namespace {

using namespace nwc;

sim::Task<> pingTask(sim::Engine& e, int hops) {
  for (int i = 0; i < hops; ++i) co_await e.delay(1);
}

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    e.spawn(pingTask(e, static_cast<int>(state.range(0))));
    e.run();
    benchmark::DoNotOptimize(e.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

void BM_EngineManyTasks(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < state.range(0); ++i) e.spawn(pingTask(e, 10));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_EngineManyTasks)->Arg(1000);

// Calendar-queue hold model: pop the minimum, reinsert at a bounded random
// offset — the classic queue benchmark, shaped like the engine's steady
// state. range(0) is the fraction (in 1/8ths) of reinserts that land on the
// *current* tick, exercising the same-tick batch path.
void BM_CalendarQueueHold(benchmark::State& state) {
  constexpr int kLive = 4096;
  const std::uint64_t same_tick_eighths =
      static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::CalendarQueue q;
    sim::Rng rng(11);
    std::uint64_t seq = 0;
    for (int i = 0; i < kLive; ++i) {
      q.push(static_cast<sim::Tick>(rng.below(256)), seq++, {});
    }
    for (int i = 0; i < 100000; ++i) {
      const sim::CalEntry e = q.pop();
      const bool same = rng.below(8) < same_tick_eighths;
      q.push(e.t + (same ? 0 : 1 + rng.below(255)), seq++, {});
    }
    q.clear();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_CalendarQueueHold)->Arg(0)->Arg(4);

// The std::priority_queue the calendar replaced, under the identical hold
// model — the baseline the CalendarQueue speedup is measured against.
void BM_PriorityQueueHold(benchmark::State& state) {
  struct Entry {
    sim::Tick t;
    std::uint64_t seq;
  };
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  constexpr int kLive = 4096;
  const std::uint64_t same_tick_eighths =
      static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    std::priority_queue<Entry, std::vector<Entry>, Greater> q;
    sim::Rng rng(11);
    std::uint64_t seq = 0;
    for (int i = 0; i < kLive; ++i) {
      q.push(Entry{static_cast<sim::Tick>(rng.below(256)), seq++});
    }
    for (int i = 0; i < 100000; ++i) {
      const Entry e = q.top();
      q.pop();
      const bool same = rng.below(8) < same_tick_eighths;
      q.push(Entry{e.t + (same ? 0 : 1 + rng.below(255)), seq++});
    }
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PriorityQueueHold)->Arg(0)->Arg(4);

sim::Task<> mutexLoop(sim::Engine& e, sim::CoMutex& m, int n) {
  for (int i = 0; i < n; ++i) {
    co_await m.lock();
    co_await e.delay(1);
    m.unlock();
  }
}

void BM_CoMutexContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    sim::CoMutex m(e);
    for (int t = 0; t < 4; ++t) e.spawn(mutexLoop(e, m, 1000));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_CoMutexContention);

void BM_FifoServerRequest(benchmark::State& state) {
  sim::FifoServer s;
  sim::Tick now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.request(now, 10));
    now += 5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoServerRequest);

void BM_MeshTransfer(benchmark::State& state) {
  net::MeshParams p;
  net::MeshNetwork m(p);
  sim::Tick now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.transfer(now, 0, 7, 4096, net::TrafficClass::kPageRead));
    now += 100;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshTransfer);

void BM_CacheAccess(benchmark::State& state) {
  mem::SetAssocCache c(mem::CacheParams{64 * 1024, 32, 4});
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(rng.below(1 << 22), false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_TlbLookup(benchmark::State& state) {
  mem::Tlb t(64);
  for (sim::PageId p = 0; p < 64; ++p) t.insert(p);
  sim::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup(static_cast<sim::PageId>(rng.below(80))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

sim::Task<> chanProducer(sim::Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) co_await ch.send(i);
}
sim::Task<> chanConsumer(sim::Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) (void)co_await ch.recv();
}

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    sim::Channel<int> ch(e, 16);
    e.spawn(chanProducer(ch, 2000));
    e.spawn(chanConsumer(ch, 2000));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ChannelPingPong);

}  // namespace

BENCHMARK_MAIN();
