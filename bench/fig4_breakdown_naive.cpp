// Figure 4: performance of standard vs NWCache multiprocessor under
// NAIVE prefetching — normalized execution time breakdown.
#include "fig_breakdown.hpp"

int main(int argc, char** argv) {
  return nwc::bench::runBreakdownFigure(
      argc, argv, "fig4_breakdown_naive", nwc::machine::Prefetch::kNaive,
      "Figure 4: Standard vs NWCache MP Under Naive Prefetching "
      "(execution time normalized to the standard machine)");
}
