// Table 6: average write combining under NAIVE prefetching.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "table6_combining_naive");

  std::printf("Table 6: Average Write Combining Under Naive Prefetching "
              "(scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      plan.push_back({bench::configFor(sys, machine::Prefetch::kNaive, opt), app});
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "Standard", "NWCache", "Increase"});
  std::vector<std::vector<std::string>> rows;
  for (const std::string& app : bench::appList(opt)) {
    const auto std_s = bench::run(
        bench::configFor(machine::SystemKind::kStandard, machine::Prefetch::kNaive, opt),
        app, opt);
    const auto nwc_s = bench::run(
        bench::configFor(machine::SystemKind::kNWCache, machine::Prefetch::kNaive, opt),
        app, opt);
    const double a = std_s.metrics.write_combining.mean();
    const double b = nwc_s.metrics.write_combining.mean();
    std::vector<std::string> row = {
        app, util::AsciiTable::fmt(a, 2), util::AsciiTable::fmt(b, 2),
        a > 0 ? util::AsciiTable::fmt((b / a - 1.0) * 100.0, 0) + "%" : "-"};
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"app", "standard", "nwcache", "increase_pct"}, rows);
  std::printf("Paper shape: only moderate combining increases under naive "
              "prefetching.\n");
  return 0;
}
