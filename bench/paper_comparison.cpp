// Paper-vs-measured comparison: runs each application once per
// (system, prefetch) combination and prints every table of the paper's
// evaluation side by side with the 1999 numbers. This is the harness that
// generates the record in EXPERIMENTS.md.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "common.hpp"

namespace {

using namespace nwc;

struct PaperRow {
  // Table 3 (Mpcycles) and Table 4 (Kpcycles): swap-out times.
  double t3_std, t3_nwc;
  double t4_std, t4_nwc;
  // Tables 5/6: write combining.
  double t5_std, t5_nwc;
  double t6_std, t6_nwc;
  // Table 7: ring hit rates (%).
  double t7_naive, t7_optimal;
  // Table 8: disk-cache-hit fault latency (Kpcycles).
  double t8_std, t8_nwc;
};

// Values transcribed from the paper's Tables 3-8.
const std::map<std::string, PaperRow> kPaper = {
    {"em3d", {49.2, 1.8, 180.4, 2.8, 1.11, 1.12, 1.10, 1.10, 8.5, 10.0, 13.4, 9.7}},
    {"fft", {86.6, 3.1, 318.1, 31.8, 1.20, 1.39, 1.35, 1.38, 9.8, 13.0, 25.9, 19.6}},
    {"gauss", {30.9, 1.0, 789.8, 86.3, 1.06, 1.07, 1.03, 1.04, 49.9, 58.3, 16.7, 10.4}},
    {"lu", {39.6, 2.0, 455.0, 24.3, 1.13, 1.24, 1.05, 1.05, 13.5, 19.5, 21.5, 20.3}},
    {"mg", {33.1, 0.6, 150.8, 19.2, 1.11, 1.16, 1.05, 1.11, 41.1, 59.1, 19.1, 6.7}},
    {"radix", {48.4, 2.7, 1776.9, 2.8, 1.08, 1.12, 1.05, 1.07, 17.2, 22.6, 12.6, 9.2}},
    {"sor", {31.8, 1.3, 819.4, 12.5, 1.46, 2.30, 1.18, 1.37, 25.8, 24.1, 14.3, 10.2}},
};

struct Measured {
  apps::RunSummary std_opt, nwc_opt, std_naive, nwc_naive;
};

std::string f1(double v) { return util::AsciiTable::fmt(v); }
std::string f2(double v) { return util::AsciiTable::fmt(v, 2); }

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::parseArgs(argc, argv, "paper_comparison");

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      for (auto pf : {machine::Prefetch::kOptimal, machine::Prefetch::kNaive}) {
        plan.push_back({bench::configFor(sys, pf, opt), app});
      }
    }
  }
  bench::runAhead(plan, opt);

  std::map<std::string, Measured> runs;
  for (const std::string& app : bench::appList(opt)) {
    Measured m;
    m.std_opt = bench::run(bench::configFor(machine::SystemKind::kStandard,
                                            machine::Prefetch::kOptimal, opt),
                           app, opt);
    m.nwc_opt = bench::run(bench::configFor(machine::SystemKind::kNWCache,
                                            machine::Prefetch::kOptimal, opt),
                           app, opt);
    m.std_naive = bench::run(bench::configFor(machine::SystemKind::kStandard,
                                              machine::Prefetch::kNaive, opt),
                             app, opt);
    m.nwc_naive = bench::run(bench::configFor(machine::SystemKind::kNWCache,
                                              machine::Prefetch::kNaive, opt),
                             app, opt);
    runs.emplace(app, std::move(m));
  }

  // Long-format mirror of every table cell: (table, app, metric, value).
  // This is what CI pins against a committed golden at small scale.
  std::vector<std::vector<std::string>> long_rows;

  auto table = [&](const char* key, const char* title,
                   const std::vector<std::string>& headers, auto&& row_fn) {
    std::printf("\n%s\n", title);
    util::AsciiTable t(headers);
    for (const auto& [app, m] : runs) {
      const auto pit = kPaper.find(app);
      if (pit == kPaper.end()) continue;
      std::vector<std::string> row = row_fn(app, pit->second, m);
      t.addRow(row);
      for (std::size_t c = 1; c < row.size(); ++c) {
        long_rows.push_back({key, app, headers[c], row[c]});
      }
    }
    t.print(std::cout);
  };

  table("table3", "Table 3: avg swap-out, optimal prefetch (Mpcycles)",
        {"App", "paper std", "ours std", "paper nwc", "ours nwc", "paper ratio",
         "ours ratio"},
        [](const std::string& app, const PaperRow& p, const Measured& m) {
          const double os = m.std_opt.metrics.swap_out_ticks.mean() / 1e6;
          const double on = m.nwc_opt.metrics.swap_out_ticks.mean() / 1e6;
          return std::vector<std::string>{
              app, f1(p.t3_std), f1(os), f2(p.t3_nwc), f2(on),
              f1(p.t3_std / p.t3_nwc) + "x", on > 0 ? f1(os / on) + "x" : "-"};
        });

  table("table4", "Table 4: avg swap-out, naive prefetch (Kpcycles)",
        {"App", "paper std", "ours std", "paper nwc", "ours nwc", "paper ratio",
         "ours ratio"},
        [](const std::string& app, const PaperRow& p, const Measured& m) {
          const double os = m.std_naive.metrics.swap_out_ticks.mean() / 1e3;
          const double on = m.nwc_naive.metrics.swap_out_ticks.mean() / 1e3;
          return std::vector<std::string>{
              app, f1(p.t4_std), f1(os), f1(p.t4_nwc), f1(on),
              f1(p.t4_std / p.t4_nwc) + "x", on > 0 ? f1(os / on) + "x" : "-"};
        });

  table("table5", "Table 5: write combining, optimal prefetch",
        {"App", "paper std", "ours std", "paper nwc", "ours nwc"},
        [](const std::string& app, const PaperRow& p, const Measured& m) {
          return std::vector<std::string>{
              app, f2(p.t5_std), f2(m.std_opt.metrics.write_combining.mean()),
              f2(p.t5_nwc), f2(m.nwc_opt.metrics.write_combining.mean())};
        });

  table("table6", "Table 6: write combining, naive prefetch",
        {"App", "paper std", "ours std", "paper nwc", "ours nwc"},
        [](const std::string& app, const PaperRow& p, const Measured& m) {
          return std::vector<std::string>{
              app, f2(p.t6_std), f2(m.std_naive.metrics.write_combining.mean()),
              f2(p.t6_nwc), f2(m.nwc_naive.metrics.write_combining.mean())};
        });

  table("table7", "Table 7: NWCache read hit rates (%)",
        {"App", "paper naive", "ours naive", "paper optimal", "ours optimal"},
        [](const std::string& app, const PaperRow& p, const Measured& m) {
          return std::vector<std::string>{
              app, f1(p.t7_naive), f1(m.nwc_naive.metrics.ring_read_hits.rate() * 100),
              f1(p.t7_optimal), f1(m.nwc_opt.metrics.ring_read_hits.rate() * 100)};
        });

  table("table8", "Table 8: disk-cache-hit fault latency, naive prefetch (Kpcycles)",
        {"App", "paper std", "ours std", "paper nwc", "ours nwc"},
        [](const std::string& app, const PaperRow& p, const Measured& m) {
          return std::vector<std::string>{
              app, f1(p.t8_std),
              f1(m.std_naive.metrics.disk_cache_hit_fault_ticks.mean() / 1e3),
              f1(p.t8_nwc),
              f1(m.nwc_naive.metrics.disk_cache_hit_fault_ticks.mean() / 1e3)};
        });

  // Figures 3/4: overall execution-time improvement of the NWCache machine.
  std::printf("\nFigures 3/4: NWCache execution-time improvement\n");
  std::printf("(paper: optimal 23-64%% avg 41%%; naive -3%% to 42%%)\n");
  util::AsciiTable t({"App", "optimal (ours)", "naive (ours)"});
  for (const auto& [app, m] : runs) {
    const double i_opt = 1.0 - static_cast<double>(m.nwc_opt.exec_time) /
                                   static_cast<double>(m.std_opt.exec_time);
    const double i_naive = 1.0 - static_cast<double>(m.nwc_naive.exec_time) /
                                     static_cast<double>(m.std_naive.exec_time);
    t.addRow({app, util::AsciiTable::fmtPct(i_opt), util::AsciiTable::fmtPct(i_naive)});
    long_rows.push_back({"figure34", app, "optimal (ours)", util::AsciiTable::fmtPct(i_opt)});
    long_rows.push_back({"figure34", app, "naive (ours)", util::AsciiTable::fmtPct(i_naive)});
  }
  t.print(std::cout);

  // Attribution: where fault latency goes (stage-tagged accountant, see
  // docs/OBSERVABILITY.md). Queue share = ticks spent waiting behind other
  // traffic across all stages / end-to-end fault latency — the contention
  // the NWCache is supposed to remove. Appended after the classic tables so
  // the long-CSV keeps the historical rows as a stable prefix.
  auto faultQueueShare = [](const apps::RunSummary& s) {
    std::uint64_t queue = 0, total = 0;
    for (auto oc : {obs::AttrOutcome::kRing, obs::AttrOutcome::kCtrlCache,
                    obs::AttrOutcome::kPlatter, obs::AttrOutcome::kRemote}) {
      const obs::AttrGroup& g = s.metrics.attr.group(obs::AttrOp::kFault, oc);
      total += g.end_to_end_ticks;
      for (const auto& st : g.stages) queue += static_cast<std::uint64_t>(st.queue);
    }
    return total > 0 ? static_cast<double>(queue) / static_cast<double>(total) : 0.0;
  };
  auto ringFaultShare = [](const apps::RunSummary& s) {
    std::uint64_t ring = 0, total = 0;
    for (auto oc : {obs::AttrOutcome::kRing, obs::AttrOutcome::kCtrlCache,
                    obs::AttrOutcome::kPlatter, obs::AttrOutcome::kRemote}) {
      const std::uint64_t c = s.metrics.attr.group(obs::AttrOp::kFault, oc).count;
      total += c;
      if (oc == obs::AttrOutcome::kRing) ring += c;
    }
    return total > 0 ? static_cast<double>(ring) / static_cast<double>(total) : 0.0;
  };
  std::printf("\nAttribution: fault queue-wait share, naive prefetch\n");
  std::printf("(stage-attributed waiting as %% of end-to-end fault latency)\n");
  util::AsciiTable at({"App", "std queue", "nwc queue", "nwc ring hits"});
  for (const auto& [app, m] : runs) {
    const std::string sq = util::AsciiTable::fmtPct(faultQueueShare(m.std_naive));
    const std::string nq = util::AsciiTable::fmtPct(faultQueueShare(m.nwc_naive));
    const std::string rh = util::AsciiTable::fmtPct(ringFaultShare(m.nwc_naive));
    at.addRow({app, sq, nq, rh});
    long_rows.push_back({"attr", app, "std queue", sq});
    long_rows.push_back({"attr", app, "nwc queue", nq});
    long_rows.push_back({"attr", app, "nwc ring hits", rh});
  }
  at.print(std::cout);

  if (!opt.csv_path.empty()) {
    util::CsvWriter csv(opt.csv_path, {"table", "app", "metric", "value"});
    for (const auto& r : long_rows) csv.addRow(r);
    std::printf("(csv: %s)\n", opt.csv_path.c_str());
  }
  bench::printTraceCacheSummary(opt);

  bool all_ok = true;
  for (const auto& [app, m] : runs) {
    for (const auto* s : {&m.std_opt, &m.nwc_opt, &m.std_naive, &m.nwc_naive}) {
      if (!s->ok()) {
        std::printf("WARNING: %s failed verification on %s\n", app.c_str(),
                    s->cfg.describe().c_str());
        all_ok = false;
      }
    }
  }
  std::printf("\nall runs verified: %s\n", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
