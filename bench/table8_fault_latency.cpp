// Table 8: average page-fault latency for DISK CACHE HITS under naive
// prefetching (Kpcycles) — a proxy for the contention the NWCache removes
// from the mesh and the I/O nodes' buses.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "table8_fault_latency");

  std::printf("Table 8: Average Page Fault Latency (in Kpcycles) for Disk "
              "Cache Hits Under Naive Prefetching (scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      plan.push_back({bench::configFor(sys, machine::Prefetch::kNaive, opt), app});
    }
  }
  bench::runAhead(plan, opt);

  // Queue share: stage-attributed waiting ticks as a fraction of the
  // end-to-end latency of controller-cache-hit faults (attr accountant) —
  // it should fall with the NWCache since the ring drains bus contention.
  auto queueShare = [](const apps::RunSummary& s) {
    const obs::AttrGroup& g =
        s.metrics.attr.group(obs::AttrOp::kFault, obs::AttrOutcome::kCtrlCache);
    std::uint64_t queue = 0;
    for (const auto& st : g.stages) queue += static_cast<std::uint64_t>(st.queue);
    return g.end_to_end_ticks > 0
               ? 100.0 * static_cast<double>(queue) /
                     static_cast<double>(g.end_to_end_ticks)
               : 0.0;
  };

  util::AsciiTable t({"Application", "Standard", "NWCache", "Reduction",
                      "Std queue%", "NWC queue%"});
  std::vector<std::vector<std::string>> rows;
  for (const std::string& app : bench::appList(opt)) {
    const auto std_s = bench::run(
        bench::configFor(machine::SystemKind::kStandard, machine::Prefetch::kNaive, opt),
        app, opt);
    const auto nwc_s = bench::run(
        bench::configFor(machine::SystemKind::kNWCache, machine::Prefetch::kNaive, opt),
        app, opt);
    const double a = std_s.metrics.disk_cache_hit_fault_ticks.mean() / 1e3;
    const double b = nwc_s.metrics.disk_cache_hit_fault_ticks.mean() / 1e3;
    std::vector<std::string> row = {
        app, util::AsciiTable::fmt(a), util::AsciiTable::fmt(b),
        a > 0 ? util::AsciiTable::fmt((1.0 - b / a) * 100.0, 0) + "%" : "-",
        util::AsciiTable::fmt(queueShare(std_s), 1) + "%",
        util::AsciiTable::fmt(queueShare(nwc_s), 1) + "%"};
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"app", "standard_kpcycles", "nwcache_kpcycles", "reduction_pct",
                       "standard_queue_pct", "nwcache_queue_pct"},
              rows);
  std::printf("Paper shape: 6-63%% latency reductions; ~6 Kpcycles is the "
              "contention-free floor.\n");
  return 0;
}
