// Section 1/5 claim: "a standard multiprocessor often requires a huge
// amount of disk controller cache capacity to approach the performance of
// our system." Sweep the controller cache on the standard machine and
// compare against the NWCache machine with the paper's 16 KB caches.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "sweep_diskcache", 1.0, {"sor", "mg"});

  const std::uint64_t sizes_kb[] = {16, 64, 256, 1024};

  std::printf("Disk-controller-cache sweep under optimal prefetching "
              "(execution time in Mpcycles, scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (std::uint64_t kb : sizes_kb) {
      machine::MachineConfig cfg = bench::configFor(machine::SystemKind::kStandard,
                                                    machine::Prefetch::kOptimal, opt);
      cfg.disk_cache_bytes = kb * 1024;
      plan.push_back({cfg, app});
    }
    plan.push_back({bench::configFor(machine::SystemKind::kNWCache,
                                     machine::Prefetch::kOptimal, opt),
                    app});
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "std 16K", "std 64K", "std 256K", "std 1M",
                      "NWCache 16K"});
  std::vector<std::vector<std::string>> rows;

  for (const std::string& app : bench::appList(opt)) {
    std::vector<std::string> row = {app};
    for (std::uint64_t kb : sizes_kb) {
      machine::MachineConfig cfg = bench::configFor(machine::SystemKind::kStandard,
                                                    machine::Prefetch::kOptimal, opt);
      cfg.disk_cache_bytes = kb * 1024;
      const auto s = bench::run(cfg, app, opt);
      row.push_back(util::AsciiTable::fmt(static_cast<double>(s.exec_time) / 1e6));
    }
    const auto nwc = bench::run(bench::configFor(machine::SystemKind::kNWCache,
                                                 machine::Prefetch::kOptimal, opt),
                                app, opt);
    row.push_back(util::AsciiTable::fmt(static_cast<double>(nwc.exec_time) / 1e6));
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"app", "std_16k", "std_64k", "std_256k", "std_1m", "nwc_16k"},
              rows);
  std::printf("Paper shape: the standard machine needs a controller cache "
              "orders of magnitude larger than 16 KB to approach the "
              "NWCache machine.\n");
  return 0;
}
