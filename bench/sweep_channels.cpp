// OTDM channel-scaling study: how far can the NWCache's cache-channel count
// grow before the per-node tunable receivers become the bottleneck?
//
// The paper's ring multiplexes one cache channel per node; optical TDM slots
// make the channel count a free parameter, but every staged page still has
// to come back off the ring through one of the node's few tunable receivers.
// This sweep scales ring_channels far past the node count for several
// receiver-bank sizes, with the bank pooled (shared mode) and a non-zero
// wavelength retune cost. Two curves come out of it:
//
//  - execution time falls steeply with the channel count (more staging room,
//    fewer swap-outs blocked waiting for a ring slot) until the ring stops
//    being capacity-limited — the capacity knee;
//  - mean fault latency rises monotonically and then saturates: with many
//    channels a node's victim reads land on a different wavelength almost
//    every time, so nearly every receiver transfer pays the retune — the
//    receiver-limited regime the study is after.
//
// See docs/EXPERIMENTS.md for the workflow and the measured knee.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  // Small input, small memory: the study wants heavy paging (so the ring and
  // its receivers are actually exercised) without paper-scale runtimes.
  auto opt = bench::parseArgs(argc, argv, "sweep_channels", 0.1, {"radix"});

  const int channel_counts[] = {8, 16, 64, 256, 1024, 5000};
  const int receiver_counts[] = {1, 2, 4};

  auto cfgFor = [&](int channels, int receivers) {
    machine::MachineConfig cfg = bench::configFor(
        machine::SystemKind::kNWCache, machine::Prefetch::kOptimal, opt);
    cfg.memory_per_node = 16 * 1024;   // force heavy paging at bench scales
    cfg.ring_channels = channels;
    cfg.ring_receivers = receivers;
    cfg.ring_shared_receivers = true;  // pooled bank: any receiver, any use
    cfg.ring_retune_us = 40.0;         // switching wavelengths is not free
    return cfg;
  };

  std::printf(
      "OTDM channel sweep (NWCache/optimal, shared receivers, retune=40us, "
      "scale=%.2f)\n",
      opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (int rx : receiver_counts) {
      for (int ch : channel_counts) {
        plan.push_back({cfgFor(ch, rx), app});
      }
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "Receivers", "Channels", "Exec (Mpc)",
                      "Fault mean (pc)", "Ring hit rate"});
  std::vector<std::vector<std::string>> rows;

  for (const std::string& app : bench::appList(opt)) {
    for (int rx : receiver_counts) {
      // Locate the knees for this receiver-bank size: the capacity knee is
      // the smallest channel count within 5% of the best execution time; the
      // receiver knee is the smallest one within 2% of the saturated (worst)
      // fault latency, i.e. where retunes stop getting more frequent.
      double best_exec = -1, worst_fault = -1;
      for (int ch : channel_counts) {
        const auto s = bench::run(cfgFor(ch, rx), app, opt);
        const double mpc = static_cast<double>(s.exec_time) / 1e6;
        const double fm = s.metrics.fault_ticks.mean();
        if (best_exec < 0 || mpc < best_exec) best_exec = mpc;
        if (fm > worst_fault) worst_fault = fm;
      }
      int capacity_knee = 0, receiver_knee = 0;
      for (int ch : channel_counts) {
        const auto s = bench::run(cfgFor(ch, rx), app, opt);
        const double mpc = static_cast<double>(s.exec_time) / 1e6;
        const double fm = s.metrics.fault_ticks.mean();
        if (capacity_knee == 0 && mpc <= best_exec * 1.05) capacity_knee = ch;
        if (receiver_knee == 0 && fm >= worst_fault * 0.98) receiver_knee = ch;
        std::vector<std::string> row = {
            app, std::to_string(rx), std::to_string(ch),
            util::AsciiTable::fmt(mpc), util::AsciiTable::fmt(fm),
            util::AsciiTable::fmt(s.metrics.ring_read_hits.rate())};
        t.addRow(row);
        rows.push_back(row);
      }
      std::printf("%s rx=%d: capacity knee at %d channels (best exec %.1f "
                  "Mpc); fault latency saturates at %d channels (%.0f pc)\n",
                  app.c_str(), rx, capacity_knee, best_exec, receiver_knee,
                  worst_fault);
    }
  }
  bench::emit(opt, t,
              {"app", "receivers", "channels", "exec_mpcycles",
               "fault_mean_pcycles", "ring_hit_rate"},
              rows);
  std::printf("Expected shape: execution time falls until the ring stops "
              "being capacity-limited, while per-fault latency climbs to the "
              "retune-saturated plateau; small receiver banks pay slightly "
              "more.\n");
  return 0;
}
