// Shared implementation for Figures 3 and 4: normalized execution-time
// breakdown (NoFree / Transit / Fault / TLB / Other) of the standard and
// NWCache machines, each bar normalized to the standard machine's time.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"

namespace nwc::bench {

inline int runBreakdownFigure(int argc, char** argv, const std::string& name,
                              machine::Prefetch pf, const char* title) {
  auto opt = parseArgs(argc, argv, name);

  std::printf("%s (scale=%.2f)\n", title, opt.scale);

  std::vector<PlannedRun> plan;
  for (const std::string& app : appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      plan.push_back({configFor(sys, pf, opt), app});
    }
  }
  runAhead(plan, opt);

  util::AsciiTable t({"Application", "System", "NoFree", "Transit", "Fault", "TLB",
                      "Other", "Total"});
  std::vector<std::vector<std::string>> rows;

  for (const std::string& app : appList(opt)) {
    const auto std_s =
        run(configFor(machine::SystemKind::kStandard, pf, opt), app, opt);
    const auto nwc_s =
        run(configFor(machine::SystemKind::kNWCache, pf, opt), app, opt);

    // Normalize each per-category cpu-sum by (#cpus x standard exec time),
    // so the standard bar totals 1.00 as in the paper's figures.
    const double denom = static_cast<double>(std_s.metrics.numCpus()) *
                         static_cast<double>(std_s.exec_time);
    auto pct = [&](sim::Tick v) { return static_cast<double>(v) / denom; };

    struct Bar {
      const char* sys;
      const apps::RunSummary* s;
    } bars[] = {{"standard", &std_s}, {"nwcache", &nwc_s}};
    for (const Bar& b : bars) {
      const auto& m = b.s->metrics;
      // Average per-cpu idle tail (cpu finished before the last one) counts
      // as neither category; report measured categories directly.
      const double nofree = pct(m.totalNoFree());
      const double transit = pct(m.totalTransit());
      const double fault = pct(m.totalFault());
      const double tlb = pct(m.totalTlb());
      const double other = pct(m.totalOther());
      const double total =
          static_cast<double>(b.s->exec_time) / static_cast<double>(std_s.exec_time);
      std::vector<std::string> row = {app,
                                      b.sys,
                                      util::AsciiTable::fmt(nofree, 3),
                                      util::AsciiTable::fmt(transit, 3),
                                      util::AsciiTable::fmt(fault, 3),
                                      util::AsciiTable::fmt(tlb, 3),
                                      util::AsciiTable::fmt(other, 3),
                                      util::AsciiTable::fmt(total, 3)};
      t.addRow(row);
      rows.push_back(row);
      std::printf("%-6s %-8s |%s| %.2f\n", app.c_str(), b.sys,
                  bar(total).c_str(), total);
    }
  }
  emit(opt, t,
       {"app", "system", "nofree", "transit", "fault", "tlb", "other",
        "total_normalized"},
       rows);
  return 0;
}

}  // namespace nwc::bench
