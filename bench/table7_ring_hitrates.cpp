// Table 7: NWCache read hit rates (victim caching) under naive and optimal
// prefetching: the fraction of page-read faults served off the optical ring.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "table7_ring_hitrates");

  std::printf("Table 7: NWCache Hit Rates Under Different Prefetching "
              "Techniques (scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto pf : {machine::Prefetch::kNaive, machine::Prefetch::kOptimal}) {
      plan.push_back({bench::configFor(machine::SystemKind::kNWCache, pf, opt), app});
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "Naive (%)", "Optimal (%)"});
  std::vector<std::vector<std::string>> rows;
  for (const std::string& app : bench::appList(opt)) {
    const auto naive_s = bench::run(
        bench::configFor(machine::SystemKind::kNWCache, machine::Prefetch::kNaive, opt),
        app, opt);
    const auto opt_s = bench::run(
        bench::configFor(machine::SystemKind::kNWCache, machine::Prefetch::kOptimal, opt),
        app, opt);
    std::vector<std::string> row = {
        app, util::AsciiTable::fmt(naive_s.metrics.ring_read_hits.rate() * 100.0),
        util::AsciiTable::fmt(opt_s.metrics.ring_read_hits.rate() * 100.0)};
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"app", "naive_pct", "optimal_pct"}, rows);
  std::printf("Paper shape: hit rates span ~10%% to ~60%%, generally higher "
              "under optimal prefetching (swap-outs cluster in time).\n");
  return 0;
}
