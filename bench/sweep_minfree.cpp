// Section 5 paragraph 1: sensitivity to the minimum number of free page
// frames. The paper found NWCache machines are happiest with only 2 free
// frames while the standard machine under optimal prefetching wants ~12.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "sweep_minfree", 1.0, {"sor", "mg"});

  const int min_frees[] = {2, 4, 8, 12, 16};

  std::printf("Min-free-frames sweep (execution time in Mpcycles, scale=%.2f)\n",
              opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      for (auto pf : {machine::Prefetch::kOptimal, machine::Prefetch::kNaive}) {
        for (int mf : min_frees) {
          machine::MachineConfig cfg = bench::configFor(sys, pf, opt);
          cfg.min_free_frames = mf;
          plan.push_back({cfg, app});
        }
      }
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "System", "Prefetch", "mf=2", "mf=4", "mf=8",
                      "mf=12", "mf=16", "Best"});
  std::vector<std::vector<std::string>> rows;

  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      for (auto pf : {machine::Prefetch::kOptimal, machine::Prefetch::kNaive}) {
        std::vector<std::string> row = {app, machine::toString(sys),
                                        machine::toString(pf)};
        double best = -1;
        int best_mf = 0;
        for (int mf : min_frees) {
          machine::MachineConfig cfg = bench::configFor(sys, pf, opt);
          cfg.min_free_frames = mf;
          const auto s = bench::run(cfg, app, opt);
          const double mpc = static_cast<double>(s.exec_time) / 1e6;
          row.push_back(util::AsciiTable::fmt(mpc));
          if (best < 0 || mpc < best) {
            best = mpc;
            best_mf = mf;
          }
        }
        row.push_back("mf=" + std::to_string(best_mf));
        t.addRow(row);
        rows.push_back(row);
      }
    }
  }
  bench::emit(opt, t,
              {"app", "system", "prefetch", "mf2", "mf4", "mf8", "mf12", "mf16",
               "best"},
              rows);
  std::printf("Paper shape: NWCache best at mf=2 everywhere; the standard "
              "machine under optimal prefetching prefers larger reserves.\n");
  return 0;
}
