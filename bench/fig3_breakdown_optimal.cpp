// Figure 3: performance of standard vs NWCache multiprocessor under
// OPTIMAL prefetching — normalized execution time breakdown.
#include "fig_breakdown.hpp"

int main(int argc, char** argv) {
  return nwc::bench::runBreakdownFigure(
      argc, argv, "fig3_breakdown_optimal", nwc::machine::Prefetch::kOptimal,
      "Figure 3: Standard vs NWCache MP Under Optimal Prefetching "
      "(execution time normalized to the standard machine)");
}
