#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "apps/registry.hpp"

namespace nwc::bench {

namespace {

std::vector<std::string> splitCsvList(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

Options parseArgs(int argc, char** argv, const std::string& bench_name,
                  double default_scale, const std::vector<std::string>& default_apps) {
  Options opt;
  opt.scale = default_scale;
  opt.apps = default_apps;
  opt.csv_path = bench_name + ".csv";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--scale=", 0) == 0) {
      opt.scale = std::atof(a.c_str() + 8);
    } else if (a.rfind("--apps=", 0) == 0) {
      opt.apps = splitCsvList(a.substr(7));
    } else if (a.rfind("--csv=", 0) == 0) {
      opt.csv_path = a.substr(6);
    } else if (a.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(a.c_str() + 7, nullptr, 0);
    } else if (a == "--help" || a == "-h") {
      std::printf("usage: %s [--scale=F] [--apps=a,b] [--csv=PATH] [--seed=N]\n",
                  bench_name.c_str());
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (see --help)\n", bench_name.c_str(),
                   a.c_str());
      std::exit(2);
    }
  }
  if (opt.scale <= 0.0 || opt.scale > 1.0) {
    std::fprintf(stderr, "%s: --scale must be in (0, 1]\n", bench_name.c_str());
    std::exit(2);
  }
  return opt;
}

std::vector<std::string> appList(const Options& opt) {
  if (!opt.apps.empty()) {
    for (const auto& a : opt.apps) {
      if (apps::findApp(a) == nullptr) {
        std::fprintf(stderr, "unknown application: %s\n", a.c_str());
        std::exit(2);
      }
    }
    return opt.apps;
  }
  std::vector<std::string> all;
  for (const auto& a : apps::appRegistry()) all.push_back(a.name);
  return all;
}

machine::MachineConfig configFor(machine::SystemKind sys, machine::Prefetch pf,
                                 const Options& opt) {
  machine::MachineConfig cfg;
  cfg.withSystem(sys, pf);
  cfg.seed = opt.seed;
  return cfg;
}

apps::RunSummary run(const machine::MachineConfig& cfg, const std::string& app,
                     const Options& opt) {
  std::fprintf(stderr, "  running %-6s on %s ...\n", app.c_str(), cfg.describe().c_str());
  apps::RunSummary s = apps::runApp(cfg, app, opt.scale);
  if (!s.verified) {
    std::fprintf(stderr, "  WARNING: %s numerical verification FAILED\n", app.c_str());
  }
  if (!s.invariant_violations.empty()) {
    std::fprintf(stderr, "  WARNING: invariant violations:\n%s",
                 s.invariant_violations.c_str());
  }
  return s;
}

void emit(const Options& opt, const util::AsciiTable& table,
          const std::vector<std::string>& headers,
          const std::vector<std::vector<std::string>>& rows) {
  table.print(std::cout);
  if (opt.csv_path.empty()) return;
  try {
    util::CsvWriter csv(opt.csv_path, headers);
    for (const auto& r : rows) csv.addRow(r);
    std::printf("(csv: %s)\n", opt.csv_path.c_str());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "csv write failed: %s\n", ex.what());
  }
}

std::string bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string s(static_cast<std::size_t>(filled), '#');
  s.resize(static_cast<std::size_t>(width), ' ');
  return s;
}

}  // namespace nwc::bench
