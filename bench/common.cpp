#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "apps/registry.hpp"
#include "apps/workload.hpp"
#include "machine/config_io.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/run_meta.hpp"
#include "util/host.hpp"
#include "util/parallel.hpp"

namespace nwc::bench {

namespace {

// Summaries pre-computed by runAhead(), keyed by the full serialized
// machine configuration + application + scale. Single-threaded access:
// runAhead() fills it before the bench's row loop starts consuming.
std::unordered_map<std::string, apps::RunSummary> g_run_cache;

std::string cacheKey(const machine::MachineConfig& cfg, const std::string& app,
                     double scale) {
  // toIni() covers every INI-exposed field; append the few config members
  // without an INI key so no two distinct machines can collide.
  return machine::toIni(cfg).serialize() + "|" + app + "|" + std::to_string(scale) +
         "|" + std::to_string(cfg.pages_per_cylinder) + "|" +
         std::to_string(cfg.disk_cylinders) + "|" +
         std::to_string(cfg.log_disk_blocks) + "|" + std::to_string(cfg.l1.line_bytes) +
         "|" + std::to_string(cfg.l1.assoc) + "|" + std::to_string(cfg.l2.line_bytes) +
         "|" + std::to_string(cfg.l2.assoc);
}

void printRunWarnings(const apps::RunSummary& s, const std::string& app) {
  if (!s.verified) {
    std::fprintf(stderr, "  WARNING: %s numerical verification FAILED\n", app.c_str());
  }
  if (!s.invariant_violations.empty()) {
    std::fprintf(stderr, "  WARNING: invariant violations:\n%s",
                 s.invariant_violations.c_str());
  }
}

// Runs one simulation, exporting its instrument registry to
// opt.metrics_dir when requested. File names embed a hash of the full
// cache key so sweep benches that vary non-(system,prefetch) knobs never
// overwrite each other.
apps::RunSummary simulate(const machine::MachineConfig& cfg, const std::string& app,
                          const Options& opt) {
  // One arena per simulation thread: page tables are recycled between runs
  // instead of reallocated per Machine.
  thread_local machine::MachineArena arena;
  apps::ObsSinks sinks;
  sinks.arena = &arena;
  if (opt.metrics_dir.empty()) {
    return apps::runAppCached(cfg, app, opt.scale, opt.trace, sinks);
  }
  obs::MetricsRegistry reg;
  sinks.registry = &reg;
  apps::RunSummary s = apps::runAppCached(cfg, app, opt.scale, opt.trace, sinks);
  char hash[20];
  std::snprintf(hash, sizeof(hash), "%08llx",
                static_cast<unsigned long long>(
                    obs::fnv1aHash(cacheKey(cfg, app, opt.scale)) & 0xffffffffULL));
  // Workload specs carry filename-hostile characters (':', ';', '/'); fold
  // them to '-' (the hash suffix keeps distinct specs distinct).
  std::string safe_app = app;
  for (char& c : safe_app) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '-';
  }
  std::string path = opt.metrics_dir;
  path += '/';
  path += safe_app;
  path += '_';
  path += machine::toString(cfg.system);
  path += '_';
  path += machine::toString(cfg.prefetch);
  path += '_';
  path += hash;
  path += ".json";
  reg.writeJson(path);
  return s;
}

std::vector<std::string> splitCsvList(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

Options parseArgs(int argc, char** argv, const std::string& bench_name,
                  double default_scale, const std::vector<std::string>& default_apps) {
  Options opt;
  opt.scale = default_scale;
  opt.apps = default_apps;
  opt.csv_path = bench_name + ".csv";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--scale=", 0) == 0) {
      opt.scale = std::atof(a.c_str() + 8);
    } else if (a.rfind("--apps=", 0) == 0) {
      opt.apps = splitCsvList(a.substr(7));
    } else if (a.rfind("--csv=", 0) == 0) {
      opt.csv_path = a.substr(6);
    } else if (a.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(a.c_str() + 7, nullptr, 0);
    } else if (a.rfind("--jobs=", 0) == 0) {
      opt.jobs = static_cast<unsigned>(std::strtoul(a.c_str() + 7, nullptr, 10));
    } else if (a.rfind("--metrics-dir=", 0) == 0) {
      opt.metrics_dir = a.substr(std::strlen("--metrics-dir="));
    } else if (a.rfind("--trace-dir=", 0) == 0) {
      opt.trace.dir = a.substr(std::strlen("--trace-dir="));
    } else if (a == "--record") {
      opt.trace.mode = apps::TraceMode::kRecord;
    } else if (a == "--replay") {
      opt.trace.mode = apps::TraceMode::kReplay;
    } else if (a == "--no-trace") {
      opt.trace.mode = apps::TraceMode::kOff;
    } else if (a.rfind("--profile=", 0) == 0) {
      opt.profile_path = a.substr(std::strlen("--profile="));
      obs::prof::enableWithReportAtExit(opt.profile_path);
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: %s [--scale=F] [--apps=a,b] [--csv=PATH] [--seed=N] [--jobs=N] "
          "[--metrics-dir=DIR] [--trace-dir=DIR [--record|--replay|--no-trace]] "
          "[--profile=FILE]\n",
          bench_name.c_str());
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (see --help)\n", bench_name.c_str(),
                   a.c_str());
      std::exit(2);
    }
  }
  if (opt.scale <= 0.0 || opt.scale > 1.0) {
    std::fprintf(stderr, "%s: --scale must be in (0, 1]\n", bench_name.c_str());
    std::exit(2);
  }
  if (opt.trace.dir.empty() && (opt.trace.mode == apps::TraceMode::kRecord ||
                                opt.trace.mode == apps::TraceMode::kReplay)) {
    std::fprintf(stderr, "%s: --record/--replay require --trace-dir=DIR\n",
                 bench_name.c_str());
    std::exit(2);
  }
  if (!opt.metrics_dir.empty()) {
    std::filesystem::create_directories(opt.metrics_dir);
  }
  if (!opt.trace.dir.empty()) {
    std::filesystem::create_directories(opt.trace.dir);
  }
  return opt;
}

std::vector<std::string> appList(const Options& opt) {
  if (!opt.apps.empty()) {
    for (const auto& a : opt.apps) {
      if (const std::string err = apps::workloadSpecError(a); !err.empty()) {
        std::fprintf(stderr, "%s\n", err.c_str());
        std::exit(2);
      }
    }
    return opt.apps;
  }
  std::vector<std::string> all;
  for (const auto& a : apps::appRegistry()) all.push_back(a.name);
  return all;
}

machine::MachineConfig configFor(machine::SystemKind sys, machine::Prefetch pf,
                                 const Options& opt) {
  machine::MachineConfig cfg;
  cfg.withSystem(sys, pf);
  cfg.seed = opt.seed;
  return cfg;
}

void runAhead(const std::vector<PlannedRun>& plan, const Options& opt) {
  const unsigned jobs = util::resolveJobs(opt.jobs);
  if (jobs <= 1) return;  // serial: run() simulates on demand, as before

  std::vector<const PlannedRun*> todo;
  std::vector<std::string> keys;
  std::unordered_set<std::string> planned;
  for (const PlannedRun& p : plan) {
    std::string key = cacheKey(p.cfg, p.app, opt.scale);
    if (g_run_cache.contains(key) || !planned.insert(key).second) continue;
    todo.push_back(&p);
    keys.push_back(std::move(key));
  }
  if (todo.empty()) return;

  std::fprintf(stderr, "  running %zu simulations on %u threads\n", todo.size(), jobs);
  std::vector<apps::RunSummary> out(todo.size());
  util::ProgressMeter meter(todo.size(), &std::cerr);
  util::ParallelExecutor exec(jobs);
  exec.forEachIndex(todo.size(), [&](std::size_t i) {
    apps::RunSummary s = simulate(todo[i]->cfg, todo[i]->app, opt);
    meter.completed(todo[i]->app + " on " + todo[i]->cfg.describe(), s.ok());
    out[i] = std::move(s);
  });
  for (std::size_t i = 0; i < todo.size(); ++i) {
    g_run_cache.emplace(std::move(keys[i]), std::move(out[i]));
  }
}

apps::RunSummary run(const machine::MachineConfig& cfg, const std::string& app,
                     const Options& opt) {
  const auto it = g_run_cache.find(cacheKey(cfg, app, opt.scale));
  if (it != g_run_cache.end()) {
    printRunWarnings(it->second, app);
    return it->second;
  }
  std::fprintf(stderr, "  running %-6s on %s ...\n", app.c_str(), cfg.describe().c_str());
  apps::RunSummary s = simulate(cfg, app, opt);
  printRunWarnings(s, app);
  return s;
}

void emit(const Options& opt, const util::AsciiTable& table,
          const std::vector<std::string>& headers,
          const std::vector<std::vector<std::string>>& rows) {
  table.print(std::cout);
  if (opt.csv_path.empty()) return;
  try {
    util::CsvWriter csv(opt.csv_path, headers);
    for (const auto& r : rows) csv.addRow(r);
    std::printf("(csv: %s)\n", opt.csv_path.c_str());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "csv write failed: %s\n", ex.what());
  }
  printTraceCacheSummary(opt);
}

void printTraceCacheSummary(const Options& opt) {
  if (!opt.trace.enabled()) return;
  const auto& st = apps::traceCacheStats();
  std::fprintf(stderr,
               "trace cache: %llu replayed, %llu recorded, %llu executed, "
               "%llu fallbacks (%s written, %s read)\n",
               static_cast<unsigned long long>(st.replays.load()),
               static_cast<unsigned long long>(st.records.load()),
               static_cast<unsigned long long>(st.executes.load()),
               static_cast<unsigned long long>(st.fallbacks.load()),
               util::formatBytes(st.bytes_written.load()).c_str(),
               util::formatBytes(st.bytes_read.load()).c_str());
}

std::string bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string s(static_cast<std::size_t>(filled), '#');
  s.resize(static_cast<std::size_t>(width), ' ');
  return s;
}

}  // namespace nwc::bench
