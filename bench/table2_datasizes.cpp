// Table 2: application descriptions, input parameters and total data sizes.
#include <cstdio>

#include "apps/app_context.hpp"
#include "apps/registry.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "table2_datasizes");

  std::printf("Table 2: Application Description and Main Input Parameters "
              "(scale=%.2f)\n", opt.scale);
  util::AsciiTable t({"Program", "Description", "Input Size", "Data (MB)"});
  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : bench::appList(opt)) {
    const apps::AppInfo* info = apps::findApp(name);
    auto app = info->make(opt.scale);
    machine::MachineConfig cfg;
    machine::Machine m(cfg);
    apps::AppContext ctx(m);
    app->setup(ctx);
    const double mb = static_cast<double>(app->dataBytes()) / (1024.0 * 1024.0);
    std::vector<std::string> row = {info->name, info->description, info->input,
                                    util::AsciiTable::fmt(mb)};
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"program", "description", "input", "data_mb"}, rows);
  return 0;
}
