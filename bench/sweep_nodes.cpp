// Extension: machine-size scaling. The paper's conclusion argues the
// NWCache suits small-to-medium machines today and larger ones as optics
// get cheaper (4n optical components, n channels). Sweep the node count and
// watch whether the benefit persists as I/O pressure per disk grows.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "sweep_nodes", 1.0, {"sor", "mg"});

  std::printf("Machine-size sweep under optimal prefetching (execution time in "
              "Mpcycles, scale=%.2f)\n", opt.scale);

  struct Shape {
    int nodes;
    int io;
  };
  const Shape shapes[] = {{4, 2}, {8, 4}, {16, 4}};

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (const Shape& sh : shapes) {
      for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
        machine::MachineConfig cfg =
            bench::configFor(sys, machine::Prefetch::kOptimal, opt);
        cfg.num_nodes = sh.nodes;
        cfg.num_io_nodes = sh.io;
        cfg.ring_channels = sh.nodes;
        plan.push_back({cfg, app});
      }
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "Nodes", "I/O nodes", "Standard", "NWCache",
                      "Improvement"});
  std::vector<std::vector<std::string>> rows;

  for (const std::string& app : bench::appList(opt)) {
    for (const Shape& sh : shapes) {
      double exec[2] = {0, 0};
      int idx = 0;
      for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
        machine::MachineConfig cfg =
            bench::configFor(sys, machine::Prefetch::kOptimal, opt);
        cfg.num_nodes = sh.nodes;
        cfg.num_io_nodes = sh.io;
        cfg.ring_channels = sh.nodes;
        const auto s = bench::run(cfg, app, opt);
        exec[idx++] = static_cast<double>(s.exec_time);
      }
      std::vector<std::string> row = {
          app,
          util::AsciiTable::fmtInt(sh.nodes),
          util::AsciiTable::fmtInt(sh.io),
          util::AsciiTable::fmt(exec[0] / 1e6),
          util::AsciiTable::fmt(exec[1] / 1e6),
          util::AsciiTable::fmtPct(1.0 - exec[1] / exec[0])};
      t.addRow(row);
      rows.push_back(row);
    }
  }
  bench::emit(opt, t, {"app", "nodes", "io_nodes", "standard_mpc", "nwcache_mpc",
                       "improvement"},
              rows);
  return 0;
}
