// Shared benchmark harness: CLI options, run helpers, table/CSV emission.
//
// Every table/figure bench accepts:
//   --scale=<f>   input scale factor (1.0 = the paper's Table 2 inputs)
//   --apps=a,b,c  restrict to a comma-separated subset of applications
//   --csv=<path>  where to mirror the rows as CSV (default: ./<bench>.csv)
//   --seed=<n>    machine seed
//   --jobs=<n>    simulation threads (0 = all cores, 1 = serial)
//   --metrics-dir=<dir>  export one MetricsRegistry JSON per simulation
//   --trace-dir=<dir>    kernel trace cache: replay hits, record misses
//   --record      with --trace-dir: always execute and (re)write traces
//   --replay      with --trace-dir: strict replay, never fall back
//   --no-trace    ignore the trace cache even if --trace-dir is given
//   --profile=<path>     profile the simulator itself: nwc-profile-v1 JSON
//                        report (+ .folded flamegraph stacks) at exit
//
// Parallelism model: a bench declares its full run grid up front with
// runAhead(), which executes the simulations concurrently and caches the
// summaries; the bench's original row-building loop then consumes them
// through run() in its historical order, so tables and CSV files are
// byte-identical to a serial run.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "apps/trace_cache.hpp"
#include "machine/config.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace nwc::bench {

struct Options {
  double scale = 1.0;
  std::vector<std::string> apps;  // empty = all seven
  std::string csv_path;
  std::string metrics_dir;  // non-empty: per-run instrument JSON exports
  std::uint64_t seed = 0x5eed;
  unsigned jobs = 0;  // 0 = hardware concurrency, 1 = serial
  apps::TraceCacheConfig trace;  // --trace-dir / --record / --replay / --no-trace
  std::string profile_path;  // --profile=: host self-profile report at exit
};

/// Parses the common flags; unknown flags abort with a usage message.
Options parseArgs(int argc, char** argv, const std::string& bench_name,
                  double default_scale = 1.0,
                  const std::vector<std::string>& default_apps = {});

/// The application list the bench will run.
std::vector<std::string> appList(const Options& opt);

/// Builds a config for (system, prefetch) with the paper's best min-free
/// setting and the bench seed applied.
machine::MachineConfig configFor(machine::SystemKind sys, machine::Prefetch pf,
                                 const Options& opt);

/// One cell of a bench's run grid, for pre-execution via runAhead().
struct PlannedRun {
  machine::MachineConfig cfg;
  std::string app;
};

/// Pre-executes the planned simulations concurrently on opt.jobs threads
/// and caches their summaries (keyed by the full machine configuration,
/// application and scale). A later run() with the same key returns the
/// cached summary. With jobs <= 1 this is a no-op and run() executes each
/// simulation on demand, exactly as before.
void runAhead(const std::vector<PlannedRun>& plan, const Options& opt);

/// Runs one application (or returns its runAhead()-cached summary); prints
/// a one-line progress note to stderr.
apps::RunSummary run(const machine::MachineConfig& cfg, const std::string& app,
                     const Options& opt);

/// Prints the table to stdout and mirrors it to the options' CSV path.
void emit(const Options& opt, const util::AsciiTable& table,
          const std::vector<std::string>& headers,
          const std::vector<std::vector<std::string>>& rows);

/// One stderr line with the process-wide trace-cache totals (no-op when
/// the cache is disabled). emit() calls this; benches with bespoke output
/// paths call it directly.
void printTraceCacheSummary(const Options& opt);

/// Renders fraction in [0,1] as a crude ASCII bar (for the figure benches).
std::string bar(double fraction, int width = 40);

}  // namespace nwc::bench
