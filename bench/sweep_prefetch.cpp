// Section 5 "Discussion": "We expect results for realistic and
// sophisticated prefetching techniques to lie between these two extremes."
// Sweep the hinted-prefetch accuracy from 0 (naive) to 1 (optimal) and
// watch the NWCache improvement interpolate between the two regimes.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "sweep_prefetch", 1.0, {"sor", "mg"});

  const double accuracies[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::printf("Prefetch-quality sweep (hinted policy; execution Mpcycles and "
              "NWCache improvement, scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (double acc : accuracies) {
      for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
        machine::MachineConfig cfg =
            bench::configFor(sys, machine::Prefetch::kHinted, opt);
        cfg.hint_accuracy = acc;
        plan.push_back({cfg, app});
      }
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "Hint accuracy", "Standard", "NWCache",
                      "Improvement"});
  std::vector<std::vector<std::string>> rows;

  for (const std::string& app : bench::appList(opt)) {
    for (double acc : accuracies) {
      double exec[2] = {0, 0};
      int i = 0;
      for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
        machine::MachineConfig cfg =
            bench::configFor(sys, machine::Prefetch::kHinted, opt);
        cfg.hint_accuracy = acc;
        const auto s = bench::run(cfg, app, opt);
        exec[i++] = static_cast<double>(s.exec_time);
      }
      std::vector<std::string> row = {
          app, util::AsciiTable::fmt(acc, 2), util::AsciiTable::fmt(exec[0] / 1e6),
          util::AsciiTable::fmt(exec[1] / 1e6),
          util::AsciiTable::fmtPct(1.0 - exec[1] / exec[0])};
      t.addRow(row);
      rows.push_back(row);
    }
  }
  bench::emit(opt, t, {"app", "hint_accuracy", "standard_mpc", "nwcache_mpc",
                       "improvement"},
              rows);
  std::printf("Expected shape: improvements grow monotonically-ish with hint\n"
              "accuracy, from the naive regime toward the optimal one.\n");
  return 0;
}
