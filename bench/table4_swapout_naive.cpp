// Table 4: average swap-out times under NAIVE prefetching (Kpcycles).
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace nwc;
  auto opt = bench::parseArgs(argc, argv, "table4_swapout_naive");

  std::printf("Table 4: Average Swap-Out Times (in Kpcycles) under Naive "
              "Prefetching (scale=%.2f)\n", opt.scale);

  std::vector<bench::PlannedRun> plan;
  for (const std::string& app : bench::appList(opt)) {
    for (auto sys : {machine::SystemKind::kStandard, machine::SystemKind::kNWCache}) {
      plan.push_back({bench::configFor(sys, machine::Prefetch::kNaive, opt), app});
    }
  }
  bench::runAhead(plan, opt);

  util::AsciiTable t({"Application", "Standard", "NWCache", "Speedup"});
  std::vector<std::vector<std::string>> rows;
  for (const std::string& app : bench::appList(opt)) {
    const auto std_s = bench::run(
        bench::configFor(machine::SystemKind::kStandard, machine::Prefetch::kNaive, opt),
        app, opt);
    const auto nwc_s = bench::run(
        bench::configFor(machine::SystemKind::kNWCache, machine::Prefetch::kNaive, opt),
        app, opt);
    const double std_k = std_s.metrics.swap_out_ticks.mean() / 1e3;
    const double nwc_k = nwc_s.metrics.swap_out_ticks.mean() / 1e3;
    std::vector<std::string> row = {
        app, util::AsciiTable::fmt(std_k), util::AsciiTable::fmt(nwc_k),
        nwc_k > 0 ? util::AsciiTable::fmt(std_k / nwc_k) + "x" : "-"};
    t.addRow(row);
    rows.push_back(row);
  }
  bench::emit(opt, t, {"app", "standard_kpcycles", "nwcache_kpcycles", "speedup"}, rows);
  std::printf("Paper shape: gains smaller than under optimal prefetching, but "
              "still large.\n");
  return 0;
}
